"""Persistent promotions of the registry's in-memory caches.

:class:`PersistentParseCache` and :class:`PersistentCompiledCache` keep the
exact interface (and the in-memory front layer) of their base classes in
:mod:`repro.rfc.registry`, and add write-through to a shared
:class:`~repro.cache.store.CacheStore`:

* a ``get`` miss in memory falls through to the store; a disk hit is
  decoded, promoted into the memory layer, and counted as a hit (plus a
  separate ``disk_hits`` counter) — **not** a miss, because nothing was
  recomputed;
* every ``put`` publishes to the store atomically, so concurrent
  processes — sweep workers, CLI calls, CI jobs, HTTP workers — share
  warm state the moment any one of them computes it;
* a corrupt or undecodable disk entry degrades to an ordinary miss (the
  store quarantines the file), and the recompute's ``put`` republishes a
  good copy.

Parse entries serialize through the ``schema:1b`` binary envelope
(:mod:`repro.api.binenc`: the logical forms with their provenance spans /
triggers / flags, plus the parse metadata), imported lazily to keep this
layer importable before the api package.  Compiled-program entries cannot
persist their values (compiled callables), so the disk layer stores the
*rendered source* of text-rendering backends instead — a fresh process
skips the render and pays only the ``exec``; see
:func:`repro.runtime.harness.compile_unit`.

Cache *keys* are content fingerprints all the way down (backend id +
lexicon/chunker SHA-1 + sentence text for parses, backend + IR SHA-1 for
programs), so an edited lexicon or journal changes the keys and the store
needs no explicit invalidation — stale entries are unreachable, and
``clear`` is housekeeping, not correctness.
"""

from __future__ import annotations

from ..rfc.registry import CompiledProgramCache, ParseCache
from .store import CacheStore

#: Store namespaces, one per promoted cache.
PARSE_NAMESPACE = "parse"
WINNOW_NAMESPACE = "winnow"
COMPILED_NAMESPACE = "compiled"

_KEY_SEP = "\x1f"


def _key_string(key: tuple) -> str:
    """A cache-key tuple as the store's opaque key string."""
    return _KEY_SEP.join(str(part) for part in key)


class PersistentParseCache(ParseCache):
    """The shared sentence-parse cache, promoted to a disk store.

    ``clear()`` clears the in-memory layer only — the disk store outlives
    processes by design; use :meth:`clear_disk` (or the ``cache clear``
    CLI) to drop the persisted entries too.
    """

    def __init__(self, store: CacheStore) -> None:
        super().__init__()
        self.store = store
        self.disk_hits = 0

    def get(self, key: tuple):
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self.hits += 1
                return hit
        payload = self.store.get(PARSE_NAMESPACE, _key_string(key))
        if payload is not None:
            value = self._decode(payload)
            if value is not None:
                with self._lock:
                    self._entries[key] = value
                    self.hits += 1
                    self.disk_hits += 1
                return value
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: tuple, value) -> None:
        super().put(key, value)
        payload = self._encode(value)
        if payload is not None:
            self.store.put(PARSE_NAMESPACE, _key_string(key), payload)

    def clear_disk(self) -> int:
        return self.store.clear()

    def stats(self) -> dict:
        counters = super().stats()
        with self._lock:
            counters["disk_hits"] = self.disk_hits
        counters["store"] = self.store.stats()
        return counters

    @staticmethod
    def _encode(value) -> bytes | None:
        from ..api.binenc import parse_entry_to_bytes

        try:
            result, subject_supplied = value
            return parse_entry_to_bytes(result, subject_supplied)
        except Exception:
            # Ad-hoc cache values outside the pipeline's (ParseResult,
            # bool) contract stay memory-only rather than failing the parse.
            return None

    @staticmethod
    def _decode(payload: bytes):
        from ..api.binenc import parse_entry_from_bytes

        try:
            return parse_entry_from_bytes(payload)
        except Exception:
            # Decodable-header-but-bad-body entries (e.g. written by a
            # future schema) degrade to a recompute, never a crash.
            return None


class PersistentWinnowCache(ParseCache):
    """The shared winnow-result cache, promoted to the same disk store.

    Values are whole :class:`~repro.disambiguation.winnow.WinnowTrace`
    objects, serialized through the ``schema:1b`` trace codec (per-stage
    counts plus survivor and base forms with full provenance), so a
    warm-booting process replays every previously winnowed sentence —
    byte-identical counts, survivors, and survivor order — without running
    one check.  Keys are content fingerprints of the check suite, grammar
    substrate, sentence, and LF set (see
    :meth:`~repro.core.stages.WinnowStage.cache_key`), so rule edits make
    stale entries unreachable rather than wrong.
    """

    def __init__(self, store: CacheStore) -> None:
        super().__init__()
        self.store = store
        self.disk_hits = 0

    def get(self, key: tuple):
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self.hits += 1
                return hit
        payload = self.store.get(WINNOW_NAMESPACE, _key_string(key))
        if payload is not None:
            value = self._decode(payload)
            if value is not None:
                with self._lock:
                    self._entries[key] = value
                    self.hits += 1
                    self.disk_hits += 1
                return value
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: tuple, value) -> None:
        super().put(key, value)
        payload = self._encode(value)
        if payload is not None:
            self.store.put(WINNOW_NAMESPACE, _key_string(key), payload)

    def clear_disk(self) -> int:
        return self.store.clear()

    def stats(self) -> dict:
        counters = super().stats()
        with self._lock:
            counters["disk_hits"] = self.disk_hits
        counters["store"] = self.store.stats()
        return counters

    @staticmethod
    def _encode(value) -> bytes | None:
        from ..api.binenc import winnow_entry_to_bytes

        try:
            return winnow_entry_to_bytes(value)
        except Exception:
            # Ad-hoc values outside the WinnowTrace contract stay
            # memory-only rather than failing the winnow.
            return None

    @staticmethod
    def _decode(payload: bytes):
        from ..api.binenc import winnow_entry_from_bytes

        try:
            return winnow_entry_from_bytes(payload)
        except Exception:
            return None


class PersistentCompiledCache(CompiledProgramCache):
    """The compiled-program cache with a disk layer for rendered sources.

    Values (compiled function tables) stay process-local; what persists is
    each text backend's rendered source under the same ``(backend, SHA-1)``
    key, letting a cold process skip the render step (the compile itself —
    an ``exec`` — is re-paid once per process by construction).
    """

    def __init__(self, store: CacheStore) -> None:
        super().__init__()
        self.store = store

    def get_source(self, key: tuple) -> str | None:
        payload = self.store.get(COMPILED_NAMESPACE, _key_string(key))
        if payload is None:
            return None
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError:
            return None

    def put_source(self, key: tuple, source: str) -> None:
        self.store.put(COMPILED_NAMESPACE, _key_string(key),
                       source.encode("utf-8"))

    def stats(self) -> dict:
        counters = super().stats()
        counters["store"] = self.store.stats()
        return counters
