"""The disk-backed content-addressed cache store.

One :class:`CacheStore` holds every persistent cache a registry promotes to
disk: sentence parses, compiled-program sources, whatever a future layer
adds.  The design constraints, in order:

* **Content addressing.**  Callers hand the store opaque key *strings*
  built from content fingerprints (the lexicon/chunker SHA-1 for parses,
  the IR SHA-1 for compiled programs).  The store never interprets them —
  it hashes the key to a filename, so a stale entry under an edited
  lexicon is simply never addressed again (invalidation by construction,
  no TTLs, no mtime games).

* **Safe for concurrent writers.**  Every write lands in a private temp
  file and is published with ``os.replace`` — atomic on POSIX within one
  filesystem — so a reader either sees a complete entry or none.  Two
  processes racing the same key both win: content addressing means they
  are writing identical bytes, and last-rename-wins is indistinguishable
  from first-rename-wins.

* **Corruption-tolerant reads.**  Entries carry a magic header and the
  SHA-1 of their payload.  A short file, a bad magic, or a digest
  mismatch (torn write on a dying machine, cosmic bit rot, a truncating
  filesystem) is *quarantined* — moved aside into ``quarantine/`` for
  post-mortems — and reported as a miss, so the caller recomputes and
  republishes instead of crashing or serving garbage.

* **Versioned layout.**  Entries live under ``<root>/v1/``; a future
  incompatible entry format bumps :data:`LAYOUT_VERSION` and old stores
  age out untouched (readers of the new layout never look inside ``v1``).

Layout::

    <root>/v1/<namespace>/<hh>/<sha1-of-key>.bin   # hh = first 2 hex chars
    <root>/v1/quarantine/<namespace>-<sha1>.bin    # corrupt entries, kept
    <root>/v1/tmp/                                 # private write staging

The store is deliberately byte-oriented (``get``/``put`` carry ``bytes``);
value encoding belongs to the cache layers in
:mod:`repro.cache.persistent`, which use the ``schema:1b`` binary envelope
(:mod:`repro.api.binenc`) so on-disk parse entries share the wire codec.
"""

from __future__ import annotations

import hashlib
import os
import threading

#: Bump when the entry format or directory scheme changes incompatibly.
LAYOUT_VERSION = 1

#: Entry file header: magic + format version byte.
_MAGIC = b"RCS\x01"
_DIGEST_LEN = 20  # sha1
_HEADER_LEN = len(_MAGIC) + _DIGEST_LEN


def _key_hash(key: str) -> str:
    return hashlib.sha1(key.encode("utf-8")).hexdigest()


class CacheStore:
    """A directory of content-addressed cache entries (see module docs).

    Thread-safe and multi-process-safe; cheap to construct (directories
    are created lazily on first write).  ``get``/``put`` never raise on
    I/O problems — a failing disk degrades the store to a miss machine,
    not the pipeline to a crash.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        self.base = os.path.join(self.root, f"v{LAYOUT_VERSION}")
        self._lock = threading.Lock()
        self.disk_hits = 0
        self.disk_misses = 0
        self.writes = 0
        self.quarantined = 0

    # -- paths -----------------------------------------------------------------
    def path_for(self, namespace: str, key: str) -> str:
        digest = _key_hash(key)
        return os.path.join(self.base, namespace, digest[:2], digest + ".bin")

    def _quarantine_path(self, namespace: str, path: str) -> str:
        return os.path.join(
            self.base, "quarantine", f"{namespace}-{os.path.basename(path)}"
        )

    # -- the byte-level entry API ----------------------------------------------
    def get(self, namespace: str, key: str) -> bytes | None:
        """The stored payload for ``key``, or None (missing *or* corrupt —
        corrupt entries are quarantined so the recompute can republish)."""
        path = self.path_for(namespace, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            with self._lock:
                self.disk_misses += 1
            return None
        if (
            len(blob) >= _HEADER_LEN
            and blob[: len(_MAGIC)] == _MAGIC
            and hashlib.sha1(blob[_HEADER_LEN:]).digest()
            == blob[len(_MAGIC):_HEADER_LEN]
        ):
            with self._lock:
                self.disk_hits += 1
            return blob[_HEADER_LEN:]
        self._quarantine(namespace, path)
        with self._lock:
            self.disk_misses += 1
        return None

    def put(self, namespace: str, key: str, payload: bytes) -> bool:
        """Atomically publish ``payload`` under ``key``; False on I/O failure."""
        path = self.path_for(namespace, key)
        tmp_dir = os.path.join(self.base, "tmp")
        tmp = os.path.join(
            tmp_dir, f"{os.path.basename(path)}.{os.getpid()}.{id(payload):x}"
        )
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            os.makedirs(tmp_dir, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(hashlib.sha1(payload).digest())
                handle.write(payload)
            os.replace(tmp, path)  # atomic publish: readers never see a torn file
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        with self._lock:
            self.writes += 1
        return True

    def _quarantine(self, namespace: str, path: str) -> None:
        """Move a corrupt entry aside so the slot can be recomputed."""
        target = self._quarantine_path(namespace, path)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(path, target)
        except OSError:
            # A racing reader already quarantined it (or the disk is gone);
            # either way the entry no longer blocks recompute.
            return
        with self._lock:
            self.quarantined += 1

    def verify(self) -> dict:
        """Validate every stored entry's header and payload digest.

        Corrupt entries (torn write survivors, bit rot, truncation) are
        quarantined exactly as a ``get`` would — the slot recomputes on
        next use — and the tally comes back so callers can *fail loudly*
        instead of silently serving misses: ``python -m repro cache
        stats`` exits non-zero when ``corrupt`` is anything but 0.
        """
        checked = 0
        corrupt = 0
        for namespace in self.namespaces():
            for path in list(self._entry_paths(namespace)):
                checked += 1
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                except OSError:
                    corrupt += 1
                    continue
                if (
                    len(blob) >= _HEADER_LEN
                    and blob[: len(_MAGIC)] == _MAGIC
                    and hashlib.sha1(blob[_HEADER_LEN:]).digest()
                    == blob[len(_MAGIC):_HEADER_LEN]
                ):
                    continue
                corrupt += 1
                self._quarantine(namespace, path)
        return {"checked": checked, "corrupt": corrupt}

    # -- maintenance -----------------------------------------------------------
    def namespaces(self) -> list[str]:
        try:
            return sorted(
                name for name in os.listdir(self.base)
                if name not in ("tmp", "quarantine")
                and os.path.isdir(os.path.join(self.base, name))
            )
        except OSError:
            return []

    def _entry_paths(self, namespace: str):
        base = os.path.join(self.base, namespace)
        try:
            shards = sorted(os.listdir(base))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(base, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                yield os.path.join(shard_dir, name)

    def entry_count(self, namespace: str | None = None) -> int:
        spaces = [namespace] if namespace else self.namespaces()
        return sum(1 for space in spaces for _ in self._entry_paths(space))

    def total_bytes(self, namespace: str | None = None) -> int:
        spaces = [namespace] if namespace else self.namespaces()
        total = 0
        for space in spaces:
            for path in self._entry_paths(space):
                try:
                    total += os.path.getsize(path)
                except OSError:
                    pass
        return total

    def quarantine_count(self) -> int:
        try:
            return len(os.listdir(os.path.join(self.base, "quarantine")))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry (all namespaces, tmp, quarantine); returns the
        number of entry files removed.  The directory skeleton survives."""
        removed = 0
        for space in self.namespaces():
            for path in list(self._entry_paths(space)):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        for extra in ("tmp", "quarantine"):
            extra_dir = os.path.join(self.base, extra)
            try:
                names = os.listdir(extra_dir)
            except OSError:
                continue
            for name in names:
                try:
                    os.unlink(os.path.join(extra_dir, name))
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        """Process-local counters plus the on-disk footprint."""
        with self._lock:
            counters = {
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "writes": self.writes,
                "quarantined": self.quarantined,
            }
        counters["root"] = self.root
        counters["layout_version"] = LAYOUT_VERSION
        counters["namespaces"] = {
            space: {
                "entries": self.entry_count(space),
                "bytes": self.total_bytes(space),
            }
            for space in self.namespaces()
        }
        counters["quarantine_entries"] = self.quarantine_count()
        return counters

    def reset_lock_after_fork(self) -> None:
        """Fresh stats lock for single-threaded fork workers (see
        :meth:`repro.rfc.registry.ProtocolRegistry.reset_locks_after_fork`)."""
        self._lock = threading.Lock()
