"""Seeded episode synthesis for the differential scenario fuzzer.

A :class:`TraceGenerator` turns one integer seed into a deterministic
stream of :class:`Episode` objects — randomized packet traces, peer event
schedules, and multi-node topology parameters — using nothing but
``random.Random(seed)`` (no wall clock, no process state), so the same
seed always synthesizes the same episodes, byte for byte.

Every episode is a JSON-safe parameter record, not live objects: the
:mod:`repro.fuzz.scenarios` replay functions rebuild the topology from the
parameters, which is what makes a shrunk episode a *replayable case file*.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

PROTOCOLS = ("ICMP", "IGMP", "NTP", "BFD")

#: Scenario families per protocol.  Each family names one replay function
#: in :mod:`repro.fuzz.scenarios`; the interop matrix is indexed by them.
FAMILIES: dict[str, tuple[str, ...]] = {
    "ICMP": ("ping", "traceroute-switch", "fault-ping"),
    "IGMP": ("query", "report", "fault-query"),
    "NTP": ("timeout", "mode-matrix", "tick-jitter"),
    "BFD": ("handshake", "packet-storm", "lossy-handshake"),
}

# NTP association modes (mirrors repro.framework.ntp; kept numeric so
# episode params stay JSON scalars).
_NTP_MODES = (1, 2, 3, 4, 5)

_EPISODE_SCHEMA = 1


@dataclass
class Episode:
    """One fuzz episode: a protocol, a scenario family, and its parameters.

    ``seed`` is the episode's own RNG seed (used by fault schedules inside
    the scenario); ``params`` is the JSON-safe record the replay functions
    consume.  Two episodes are equal when all four agree — which is what
    lets a shrunk case file claim "this exact episode diverges".
    """

    protocol: str
    family: str
    seed: int
    params: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.protocol}/{self.family}/seed{self.seed}"

    def to_dict(self) -> dict:
        return {"schema": _EPISODE_SCHEMA, "protocol": self.protocol,
                "family": self.family, "seed": self.seed,
                "params": self.params}

    @classmethod
    def from_dict(cls, record: dict) -> "Episode":
        return cls(protocol=record["protocol"], family=record["family"],
                   seed=record["seed"], params=dict(record.get("params", {})))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Episode":
        return cls.from_dict(json.loads(text))


class TraceGenerator:
    """Deterministic episode synthesis from one integer seed.

    Episodes round-robin over the requested protocols, cycling through
    each protocol's scenario families, so any episode budget spreads
    evenly across the matrix.  All randomness flows from the constructor's
    ``random.Random(seed)``; per-episode parameters are drawn from a
    *fresh* ``random.Random(episode_seed)`` so an episode's content
    depends only on its own seed — the property the shrinker and the
    replay CLI rely on.
    """

    def __init__(self, seed: int = 0,
                 protocols: tuple[str, ...] = (),
                 families: tuple[str, ...] = ()) -> None:
        self.seed = seed
        selected = tuple(p.upper() for p in protocols) or PROTOCOLS
        unknown = [p for p in selected if p not in FAMILIES]
        if unknown:
            raise KeyError(f"no scenario families for protocols {unknown}; "
                           f"known: {', '.join(FAMILIES)}")
        self.protocols = selected
        self.families = tuple(families)
        for family in self.families:
            if not any(family in FAMILIES[p] for p in self.protocols):
                raise KeyError(f"unknown scenario family {family!r} for "
                               f"protocols {list(self.protocols)}")

    def episodes(self, count: int) -> list[Episode]:
        """The first ``count`` episodes of this generator's stream."""
        rng = random.Random(self.seed)
        plan: list[tuple[str, str]] = []
        for protocol in self.protocols:
            for family in FAMILIES[protocol]:
                if not self.families or family in self.families:
                    plan.append((protocol, family))
        if not plan:
            raise ValueError("no (protocol, family) combinations selected")
        episodes = []
        for index in range(count):
            protocol, family = plan[index % len(plan)]
            episode_seed = rng.randrange(2 ** 32)
            episodes.append(synthesize(protocol, family, episode_seed))
        return episodes


def synthesize(protocol: str, family: str, episode_seed: int) -> Episode:
    """One episode's parameters from its own seed (pure function)."""
    try:
        maker = _SYNTHESIZERS[(protocol, family)]
    except KeyError:
        raise KeyError(f"no synthesizer for {protocol}/{family}") from None
    rng = random.Random(episode_seed)
    return Episode(protocol=protocol, family=family, seed=episode_seed,
                   params=maker(rng))


def _faults_params(rng: random.Random) -> dict:
    """A seeded drop/delay/duplicate schedule, biased toward mild faults
    so most episodes still see end-to-end traffic."""
    return {
        "drop": round(rng.choice((0.0, 0.1, 0.2, 0.3)), 3),
        "duplicate": round(rng.choice((0.0, 0.15, 0.3)), 3),
        "delay": round(rng.choice((0.0, 0.2, 0.4)), 3),
        "fault_seed": rng.randrange(2 ** 16),
    }


# -- ICMP ----------------------------------------------------------------------

def _icmp_ping(rng: random.Random) -> dict:
    return {
        "dest": rng.choice(("router", "server1", "server2", "unknown")),
        "count": rng.randint(1, 3),
        "payload_len": rng.choice((0, 8, 32, 56, 96)),
        "ttl": rng.choice((1, 2, 64)),
        "tos": rng.choice((0, 0, 0, 1)),
        "require_tos_zero": rng.random() < 0.3,
    }


def _icmp_traceroute_switch(rng: random.Random) -> dict:
    memberships = [
        [f"10.0.1.{rng.randint(2, 250)}", f"225.0.{rng.randint(0, 9)}.{rng.randint(1, 250)}"]
        for _ in range(rng.randint(0, 2))
    ]
    return {
        "dest": rng.choice(("server1", "router")),
        "max_ttl": rng.randint(2, 6),
        "memberships": memberships,
        "query_after": rng.random() < 0.5,
    }


def _icmp_fault_ping(rng: random.Random) -> dict:
    params = {
        "dest": rng.choice(("router", "server1")),
        "count": rng.randint(1, 4),
        "payload_len": rng.choice((8, 56)),
    }
    params.update(_faults_params(rng))
    return params


# -- IGMP ----------------------------------------------------------------------

def _igmp_memberships(rng: random.Random, low: int = 0, high: int = 4) -> list:
    return [
        [f"10.0.5.{rng.randint(3, 250)}",
         f"22{rng.randint(5, 9)}.1.{rng.randint(0, 9)}.{rng.randint(1, 250)}"]
        for _ in range(rng.randint(low, high))
    ]


def _igmp_query(rng: random.Random) -> dict:
    return {"memberships": _igmp_memberships(rng),
            "queries": rng.randint(1, 3)}


def _igmp_report(rng: random.Random) -> dict:
    return {"groups": [f"226.0.{rng.randint(0, 9)}.{rng.randint(1, 250)}"
                       for _ in range(rng.randint(1, 4))]}


def _igmp_fault_query(rng: random.Random) -> dict:
    params = {"memberships": _igmp_memberships(rng, low=1, high=3),
              "queries": rng.randint(1, 2)}
    params.update(_faults_params(rng))
    return params


# -- NTP -----------------------------------------------------------------------

def _ntp_timeout(rng: random.Random) -> dict:
    return {"mode": rng.choice(_NTP_MODES),
            "threshold": rng.randint(1, 8),
            "duration": rng.randint(4, 24)}


def _ntp_mode_matrix(rng: random.Random) -> dict:
    return {"modes": [rng.choice(_NTP_MODES) for _ in range(rng.randint(2, 4))],
            "threshold": rng.randint(1, 4),
            "duration": rng.randint(6, 12)}


def _ntp_tick_jitter(rng: random.Random) -> dict:
    return {"mode": rng.choice((1, 2, 3)),
            "threshold": rng.randint(2, 6),
            "ticks": [rng.randint(1, 3) for _ in range(rng.randint(5, 15))]}


# -- BFD -----------------------------------------------------------------------

def _bfd_handshake(rng: random.Random) -> dict:
    return {"rounds": rng.randint(1, 5),
            "local_discr": rng.randint(1, 0xFFFF),
            "remote_discr": rng.randint(0x10000, 0x1FFFF),
            "demand_after": rng.random() < 0.5}


def _bfd_packet(rng: random.Random) -> dict:
    """One scripted control packet; deliberately includes invalid values
    so the §6.8.6 validation prefix gets differential coverage."""
    return {
        "version": rng.choice((1, 1, 1, 0)),
        "state": rng.randint(0, 3),
        "demand": rng.choice((0, 0, 1)),
        "multipoint": rng.choice((0, 0, 0, 1)),
        "detect_mult": rng.choice((3, 3, 1, 0)),
        "length": rng.choice((24, 24, 24, 23)),
        "my_discriminator": rng.choice((9, 9, 13, 0)),
        "your_discriminator": rng.choice((7, 7, 0, 5)),
        "required_min_rx_interval": rng.choice((1, 1000, 250000)),
    }


def _bfd_packet_storm(rng: random.Random) -> dict:
    return {"initial_state": rng.randint(0, 3),
            "local_discr": 7,
            "packets": [_bfd_packet(rng) for _ in range(rng.randint(4, 16))]}


def _bfd_lossy_handshake(rng: random.Random) -> dict:
    params = {"rounds": rng.randint(2, 6),
              "local_discr": rng.randint(1, 0xFFFF),
              "remote_discr": rng.randint(0x10000, 0x1FFFF)}
    params.update(_faults_params(rng))
    return params


_SYNTHESIZERS = {
    ("ICMP", "ping"): _icmp_ping,
    ("ICMP", "traceroute-switch"): _icmp_traceroute_switch,
    ("ICMP", "fault-ping"): _icmp_fault_ping,
    ("IGMP", "query"): _igmp_query,
    ("IGMP", "report"): _igmp_report,
    ("IGMP", "fault-query"): _igmp_fault_query,
    ("NTP", "timeout"): _ntp_timeout,
    ("NTP", "mode-matrix"): _ntp_mode_matrix,
    ("NTP", "tick-jitter"): _ntp_tick_jitter,
    ("BFD", "handshake"): _bfd_handshake,
    ("BFD", "packet-storm"): _bfd_packet_storm,
    ("BFD", "lossy-handshake"): _bfd_lossy_handshake,
}
