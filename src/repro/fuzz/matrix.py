"""The interop matrix: pass/fail per backend-pair × protocol × family.

Every differential comparison lands in one cell; a cell is green when no
episode in it diverged.  The matrix is the artifact CI gates on — it is
serialized into the fuzz report, uploaded by the ``fuzz-gate`` workflow
step, and its headline numbers are recorded into ``BENCH_pipeline.json``
(as ``fuzz_*`` keys, carried across benchmark re-runs the same way the
serving-layer numbers are).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class MatrixCell:
    episodes: int = 0
    divergences: int = 0

    @property
    def green(self) -> bool:
        return self.divergences == 0

    def to_dict(self) -> dict:
        return {"episodes": self.episodes, "divergences": self.divergences,
                "pass": self.green}


@dataclass
class InteropMatrix:
    """Cells keyed by (backend pair, protocol, scenario family)."""

    pairs: tuple[str, ...] = ()
    cells: dict[tuple[str, str, str], MatrixCell] = field(default_factory=dict)

    @classmethod
    def for_backends(cls, backends: tuple[str, ...]) -> "InteropMatrix":
        pairs = tuple(f"{a}|{b}"
                      for a, b in itertools.combinations(backends, 2))
        return cls(pairs=pairs)

    def record(self, pair: str, protocol: str, family: str,
               diverged: bool) -> None:
        cell = self.cells.setdefault((pair, protocol, family), MatrixCell())
        cell.episodes += 1
        if diverged:
            cell.divergences += 1

    def cell(self, pair: str, protocol: str, family: str) -> MatrixCell:
        return self.cells.get((pair, protocol, family), MatrixCell())

    @property
    def all_green(self) -> bool:
        return all(cell.green for cell in self.cells.values())

    @property
    def divergent_cells(self) -> list[tuple[str, str, str]]:
        return sorted(key for key, cell in self.cells.items()
                      if not cell.green)

    def protocols(self) -> list[str]:
        return sorted({protocol for (_pair, protocol, _family) in self.cells})

    def families(self, protocol: str) -> list[str]:
        return sorted({family for (_pair, p, family) in self.cells
                       if p == protocol})

    def to_dict(self) -> dict:
        nested: dict[str, dict] = {}
        for (pair, protocol, family), cell in sorted(self.cells.items()):
            nested.setdefault(pair, {}).setdefault(protocol, {})[family] = \
                cell.to_dict()
        return {"pairs": list(self.pairs), "cells": nested,
                "all_green": self.all_green}

    def rows(self) -> list[tuple[str, str, str, int, int, str]]:
        """Flat (pair, protocol, family, episodes, divergences, verdict)
        rows for table rendering."""
        return [
            (pair, protocol, family, cell.episodes, cell.divergences,
             "ok" if cell.green else "DIVERGED")
            for (pair, protocol, family), cell in sorted(self.cells.items())
        ]


def bench_keys(report_dict: dict) -> dict:
    """The ``fuzz_*`` headline numbers for ``BENCH_pipeline.json``."""
    matrix = report_dict.get("matrix", {})
    return {
        "fuzz_seed": report_dict.get("seed", 0),
        "fuzz_episodes": report_dict.get("episodes", 0),
        "fuzz_backends": report_dict.get("backends", []),
        "fuzz_divergences": len(report_dict.get("divergences", [])),
        "fuzz_violations": len(report_dict.get("violations", [])),
        "fuzz_matrix_pairs": len(matrix.get("pairs", [])),
        "fuzz_matrix_all_green": matrix.get("all_green", False),
        "fuzz_traces_sha1": report_dict.get("traces_sha1", ""),
        "fuzz_c_fingerprints": report_dict.get("c_fingerprints", {}),
        "fuzz_clean": report_dict.get("clean", False),
    }


def record_bench(report_dict: dict, path: str | Path) -> dict:
    """Merge the fuzz headline numbers into ``BENCH_pipeline.json``.

    Read-modify-write: everything already in the file (pipeline numbers,
    ``serve_*`` keys, history) is preserved; only ``fuzz_*`` keys are
    replaced.  Returns the merged document.
    """
    path = Path(path)
    numbers: dict = {}
    if path.exists():
        try:
            numbers = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            numbers = {}
    numbers.update(bench_keys(report_dict))
    path.write_text(json.dumps(numbers, indent=2) + "\n")
    return numbers
