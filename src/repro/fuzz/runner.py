"""The differential runner: one episode, every backend, one verdict.

:class:`DifferentialRunner` replays each episode against every executable
backend — the hand-written reference and the generated code under the
exec-Python and interpreter backends — and compares the resulting traces
for exact equality (wire bytes and state trajectories both).  The C
backend cannot execute, so it is locked in via emitted-source
fingerprints: :meth:`DifferentialRunner.c_fingerprints` renders each
protocol's C twice and records the SHA-1, failing the lock if the
rendering is unstable.

Per-protocol invariant oracles (:mod:`repro.fuzz.oracles`) run over every
trace; oracle violations and cross-backend divergences are both fatal to
the interop matrix.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field

from .generator import FAMILIES, PROTOCOLS, Episode, TraceGenerator
from .matrix import InteropMatrix
from .oracles import check_trace
from .scenarios import EXECUTABLE_BACKENDS, make_peer, replay


def first_difference(left, right, path: str = "") -> tuple[str, object, object] | None:
    """The first structural difference between two JSON-safe values.

    Returns ``(path, left_value, right_value)`` — e.g.
    ``("router_tx[3]", "4500...", "4500...")`` — or None when equal.
    Dicts recurse over the union of keys, lists over indices; everything
    else compares by equality.
    """
    if isinstance(left, dict) and isinstance(right, dict):
        for key in sorted(set(left) | set(right), key=str):
            inner = f"{path}.{key}" if path else str(key)
            if key not in left:
                return (inner, None, right[key])
            if key not in right:
                return (inner, left[key], None)
            found = first_difference(left[key], right[key], inner)
            if found is not None:
                return found
        return None
    if isinstance(left, list) and isinstance(right, list):
        for index, (a, b) in enumerate(zip(left, right)):
            found = first_difference(a, b, f"{path}[{index}]")
            if found is not None:
                return found
        if len(left) != len(right):
            return (f"{path}.length", len(left), len(right))
        return None
    if left != right:
        return (path or "<root>", left, right)
    return None


@dataclass
class Divergence:
    """Two backends disagreeing on one episode, pinned to the first
    differing trace path."""

    episode: Episode
    backend_a: str
    backend_b: str
    path: str
    left: object
    right: object

    def to_dict(self) -> dict:
        return {
            "episode": self.episode.to_dict(),
            "pair": f"{self.backend_a}|{self.backend_b}",
            "path": self.path,
            "left": self.left,
            "right": self.right,
        }

    def __repr__(self) -> str:
        return (f"Divergence({self.episode.key}, "
                f"{self.backend_a}|{self.backend_b} at {self.path!r})")


@dataclass
class Violation:
    """One oracle violation on one backend's trace."""

    episode: Episode
    backend: str
    message: str

    def to_dict(self) -> dict:
        return {"episode": self.episode.to_dict(), "backend": self.backend,
                "message": self.message}


@dataclass
class FuzzReport:
    """Everything one fuzz run produced, JSON-safe via :meth:`to_dict`."""

    seed: int
    backends: tuple[str, ...]
    episodes: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    matrix: InteropMatrix | None = None
    c_fingerprints: dict = field(default_factory=dict)
    traces_sha1: str = ""

    @property
    def clean(self) -> bool:
        return (not self.divergences and not self.violations
                and (self.matrix is None or self.matrix.all_green)
                and all(entry["stable"]
                        for entry in self.c_fingerprints.values()))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "backends": list(self.backends),
            "episodes": self.episodes,
            "divergences": [d.to_dict() for d in self.divergences],
            "violations": [v.to_dict() for v in self.violations],
            "matrix": self.matrix.to_dict() if self.matrix else {},
            "c_fingerprints": self.c_fingerprints,
            "traces_sha1": self.traces_sha1,
            "clean": self.clean,
        }


class DifferentialRunner:
    """Replays episodes against every backend and scores the matrix.

    ``units`` maps protocol name → IR program (a run's ``code_unit``);
    protocols without a unit can still run their reference backend but
    will fail peer construction for generated backends, so normally every
    fuzzed protocol has its unit present.
    """

    def __init__(self, units: dict[str, object],
                 backends: tuple[str, ...] = EXECUTABLE_BACKENDS) -> None:
        if len(backends) < 2:
            raise ValueError("differential testing needs at least two "
                             f"backends, got {list(backends)}")
        self.units = {name.upper(): unit for name, unit in units.items()}
        self.backends = tuple(backends)

    # -- single-episode surface ------------------------------------------------
    def trace(self, episode: Episode, backend: str) -> dict:
        peer = make_peer(episode.protocol, backend,
                         self.units.get(episode.protocol))
        return replay(episode, peer)

    def run_episode(self, episode: Episode,
                    matrix: InteropMatrix | None = None,
                    ) -> tuple[list[Divergence], list[Violation], dict]:
        """One episode against every backend; returns (divergences,
        violations, traces-by-backend) and scores ``matrix`` if given."""
        traces = {backend: self.trace(episode, backend)
                  for backend in self.backends}
        divergences = []
        for backend_a, backend_b in itertools.combinations(self.backends, 2):
            found = first_difference(traces[backend_a], traces[backend_b])
            diverged = found is not None
            if diverged:
                divergences.append(Divergence(
                    episode=episode, backend_a=backend_a, backend_b=backend_b,
                    path=found[0], left=found[1], right=found[2],
                ))
            if matrix is not None:
                matrix.record(f"{backend_a}|{backend_b}", episode.protocol,
                              episode.family, diverged=diverged)
        violations = [
            Violation(episode=episode, backend=backend, message=message)
            for backend, trace in traces.items()
            for message in check_trace(episode, trace)
        ]
        return divergences, violations, traces

    def diverges(self, episode: Episode) -> bool:
        """Shrink predicate: does this episode still split the backends?"""
        divergences, _violations, _traces = self.run_episode(episode)
        return bool(divergences)

    # -- the C lock --------------------------------------------------------------
    def c_fingerprints(self) -> dict:
        """SHA-1 of each protocol's emitted C source, rendered twice.

        The C backend is text-only; its matrix column is render
        *stability* — the same IR must emit byte-identical C on every
        rendering, or downstream compilation is not reproducible.
        """
        fingerprints = {}
        for protocol, unit in sorted(self.units.items()):
            first = hashlib.sha1(unit.render_c().encode("utf-8")).hexdigest()
            second = hashlib.sha1(unit.render_c().encode("utf-8")).hexdigest()
            fingerprints[protocol] = {"sha1": first,
                                      "stable": first == second}
        return fingerprints

    # -- the fuzz loop ------------------------------------------------------------
    def run(self, episodes: list[Episode], seed: int = 0) -> FuzzReport:
        matrix = InteropMatrix.for_backends(self.backends)
        report = FuzzReport(seed=seed, backends=self.backends, matrix=matrix)
        digest = hashlib.sha1()
        for episode in episodes:
            divergences, violations, traces = self.run_episode(episode, matrix)
            report.divergences.extend(divergences)
            report.violations.extend(violations)
            report.episodes += 1
            digest.update(json.dumps([episode.to_dict(), traces],
                                     sort_keys=True).encode("utf-8"))
        report.c_fingerprints = self.c_fingerprints()
        report.traces_sha1 = digest.hexdigest()
        return report


def run_fuzz(units: dict[str, object], seed: int = 0, episodes: int = 50,
             protocols: tuple[str, ...] = (),
             families: tuple[str, ...] = (),
             backends: tuple[str, ...] = EXECUTABLE_BACKENDS) -> FuzzReport:
    """Generate and run one seeded fuzz campaign (the service entry point)."""
    generator = TraceGenerator(seed=seed, protocols=protocols,
                               families=families)
    runner = DifferentialRunner(units, backends=backends)
    return runner.run(generator.episodes(episodes), seed=seed)
