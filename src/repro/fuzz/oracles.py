"""Per-protocol invariant oracles over replay traces.

Differential comparison catches backends that *disagree*; oracles catch
the case where every backend agrees on something *wrong*.  Each oracle
receives an :class:`~repro.fuzz.generator.Episode` plus one backend's
trace dict and returns human-readable violation strings (empty when the
trace is clean).

Adding an oracle is one call::

    from repro.fuzz.oracles import register_oracle

    def no_giant_replies(episode, trace):
        return [f"oversized reply {h}" for h in trace.get("client_rx", ())
                if len(h) // 2 > 1500]

    register_oracle("ICMP", no_giant_replies)

Registered oracles run on every trace of their protocol, every backend,
every episode.
"""

from __future__ import annotations

from typing import Callable

from ..framework.addressing import ip_to_int
from ..framework.igmp import HOST_MEMBERSHIP_REPORT, IGMPHeader
from ..framework.ip import PROTO_IGMP, PROTO_UDP, IPv4Header
from ..framework.ntp import NTP_PORT
from ..framework.tcpdump import decode_packet
from ..framework.udp import UDPHeader
from .generator import Episode

Oracle = Callable[[Episode, dict], list]

ORACLES: dict[str, list[Oracle]] = {}


def register_oracle(protocol: str, oracle: Oracle) -> None:
    ORACLES.setdefault(protocol.upper(), []).append(oracle)


def check_trace(episode: Episode, trace: dict) -> list[str]:
    """Every registered violation for ``trace`` under its protocol."""
    violations: list[str] = []
    for oracle in ORACLES.get(episode.protocol, ()):
        violations.extend(str(v) for v in oracle(episode, trace))
    return violations


#: Trace fields that carry raw wire bytes as hex strings.
WIRE_FIELDS = ("client_rx", "router_tx", "switch_tx", "querier_tx",
               "local_tx", "remote_tx", "emitted")


def _wire_fields(trace: dict) -> list[tuple[str, str]]:
    """Every (field, hex) wire capture in a trace."""
    captures = []
    for name in WIRE_FIELDS:
        for item in trace.get(name, ()):
            if isinstance(item, str):
                captures.append((name, item))
    return captures


# -- ICMP: every emitted datagram must survive tcpdump -v ----------------------

def _icmp_tcpdump_clean(episode: Episode, trace: dict) -> list[str]:
    violations = []
    for field, value in _wire_fields(trace):
        decoded = decode_packet(bytes.fromhex(value))
        for warning in decoded.warnings:
            violations.append(f"{field}: {warning} in {decoded.summary}")
    return violations


def _icmp_reply_accounting(episode: Episode, trace: dict) -> list[str]:
    transmitted = trace.get("transmitted")
    received = trace.get("received")
    if transmitted is None or received is None:
        return []
    if received > transmitted:
        return [f"received {received} replies for {transmitted} probes"]
    return []


# -- IGMP: RFC 1112 report discipline ------------------------------------------

def _igmp_reports_well_formed(episode: Episode, trace: dict) -> list[str]:
    violations = []
    for field in ("switch_tx", "reports", "querier_tx"):
        for value in trace.get(field, ()):
            if not isinstance(value, str):
                continue
            try:
                packet = IPv4Header.unpack(bytes.fromhex(value))
            except ValueError as exc:
                violations.append(f"{field}: malformed IP datagram ({exc})")
                continue
            if packet.protocol != PROTO_IGMP:
                violations.append(f"{field}: non-IGMP protocol {packet.protocol}")
                continue
            if packet.ttl != 1:
                violations.append(f"{field}: IGMP datagram with TTL "
                                  f"{packet.ttl}, RFC 1112 requires 1")
            try:
                message = IGMPHeader.unpack(packet.data)
            except ValueError as exc:
                violations.append(f"{field}: truncated IGMP message ({exc})")
                continue
            if not message.checksum_ok():
                violations.append(f"{field}: bad IGMP checksum")
            if (message.type == HOST_MEMBERSHIP_REPORT
                    and packet.dst != message.group_address):
                violations.append(
                    f"{field}: report for group {message.group_address:#x} "
                    f"addressed to {packet.dst:#x}"
                )
    return violations


# -- NTP: Appendix A encapsulation and timer discipline ------------------------

def _ntp_encapsulation(episode: Episode, trace: dict) -> list[str]:
    violations = []
    traces = [trace] + [entry[1] for entry in trace.get("modes", ())]
    for subtrace in traces:
        for value in subtrace.get("emitted", ()):
            try:
                packet = IPv4Header.unpack(bytes.fromhex(value))
                datagram = UDPHeader.unpack(packet.data)
            except ValueError as exc:
                violations.append(f"emitted: malformed NTP datagram ({exc})")
                continue
            if packet.protocol != PROTO_UDP:
                violations.append(f"emitted: NTP outside UDP "
                                  f"(protocol {packet.protocol})")
            if (datagram.src_port, datagram.dst_port) != (NTP_PORT, NTP_PORT):
                violations.append(
                    f"emitted: ports {datagram.src_port}->{datagram.dst_port}"
                    f", RFC 1059 Appendix A requires {NTP_PORT} on both ends"
                )
        for entry in subtrace.get("trajectory", ()):
            timer, _fired, packet_hex = entry
            if packet_hex is not None and timer != 0:
                violations.append(
                    f"trajectory: timeout fired but peer timer is {timer}, "
                    "the timeout procedure must reset it"
                )
    return violations


# -- BFD: session states stay inside the §6.8.6 machine ------------------------

_BFD_STATES = frozenset(range(4))


def _bfd_states_legal(episode: Episode, trace: dict) -> list[str]:
    violations = []
    snapshots = []
    for entry in trace.get("snapshots", ()):
        snapshots.append(entry[0] if isinstance(entry, list) else entry)
    for step in trace.get("steps", ()):
        snapshots.append(step["snapshot"])
    for index, snapshot in enumerate(snapshots):
        for name in ("SessionState", "RemoteSessionState"):
            value = snapshot.get(name)
            if value not in _BFD_STATES:
                violations.append(
                    f"snapshot {index}: {name}={value} outside the "
                    "AdminDown/Down/Init/Up machine"
                )
    return violations


register_oracle("ICMP", _icmp_tcpdump_clean)
register_oracle("ICMP", _icmp_reply_accounting)
register_oracle("IGMP", _igmp_reports_well_formed)
register_oracle("NTP", _ntp_encapsulation)
register_oracle("BFD", _bfd_states_legal)
