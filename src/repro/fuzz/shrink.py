"""Minimizing reproducer: shrink a divergent episode to a small case file.

Given an episode that fails some predicate (usually
:meth:`~repro.fuzz.runner.DifferentialRunner.diverges`), :func:`shrink`
greedily simplifies its parameters — delta-debugging over lists, bisection
toward zero for numbers — while the predicate keeps failing.  The result
round-trips through a JSON case file (:func:`save_case` /
:func:`load_case`) that ``python -m repro fuzz --replay`` re-executes
verbatim, so a divergence found in CI is reproducible from the artifact
alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from .generator import Episode

CASE_SCHEMA = 1

StillFails = Callable[[Episode], bool]


def _list_candidates(value: list) -> list[list]:
    """Shorter versions of ``value``: halves first, then drop-one."""
    candidates = []
    length = len(value)
    if length == 0:
        return candidates
    if length > 1:
        half = length // 2
        candidates.append(value[:half])
        candidates.append(value[half:])
    for index in range(length):
        candidates.append(value[:index] + value[index + 1:])
    return candidates


def _scalar_candidates(value) -> list:
    if isinstance(value, bool):
        return [False] if value else []
    if isinstance(value, int):
        candidates = []
        for simpler in (0, 1, value // 2):
            if simpler != value and simpler not in candidates:
                candidates.append(simpler)
        return candidates
    if isinstance(value, float):
        return [0.0] if value != 0.0 else []
    return []


def _with_param(episode: Episode, name: str, value) -> Episode:
    params = dict(episode.params)
    params[name] = value
    return Episode(protocol=episode.protocol, family=episode.family,
                   seed=episode.seed, params=params)


def shrink(episode: Episode, still_fails: StillFails,
           max_passes: int = 8) -> Episode:
    """The smallest parameter record that still fails, greedily.

    Each pass tries, per parameter: list shortening (delta-debugging
    chunks, then single removals) and scalar simplification (0, 1,
    bisection).  Passes repeat until a fixpoint or ``max_passes``.  The
    returned episode keeps the original protocol/family/seed — only
    ``params`` shrinks — so the case stays replayable.
    """
    if not still_fails(episode):
        raise ValueError(f"{episode.key} does not fail the predicate; "
                         "nothing to shrink")
    current = episode
    for _ in range(max_passes):
        changed = False
        for name in sorted(current.params):
            value = current.params[name]
            if isinstance(value, list):
                candidates = _list_candidates(value)
            else:
                candidates = _scalar_candidates(value)
            for candidate in candidates:
                trial = _with_param(current, name, candidate)
                if still_fails(trial):
                    current = trial
                    changed = True
                    break
        if not changed:
            break
    return current


def case_name(episode: Episode) -> str:
    return (f"{episode.protocol}_{episode.family}_seed{episode.seed}"
            .lower().replace("-", "_") + ".json")


def save_case(episode: Episode, directory: str | Path,
              note: str = "") -> Path:
    """Write a replayable case file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_name(episode)
    payload = {
        "schema": CASE_SCHEMA,
        "kind": "fuzz_case",
        "note": note,
        "episode": episode.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: str | Path) -> Episode:
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "fuzz_case":
        raise ValueError(f"{path} is not a fuzz case file "
                         f"(kind={payload.get('kind')!r})")
    return Episode.from_dict(payload["episode"])
