"""Episode replay: parameters in, JSON-safe traces out, per backend.

The differential contract lives here.  :func:`make_peer` builds the
implementation-under-test for one ``(protocol, backend)`` cell — the
hand-written reference, or a :class:`~repro.runtime.harness.
GeneratedImplementation` compiled from the run's IR under any executable
backend — and :func:`replay` drives one :class:`~repro.fuzz.generator.
Episode` against it, returning a trace dict that is a pure function of
(episode, peer behaviour).  Two backends agree on an episode exactly when
their trace dicts are equal, wire bytes (hex) and state trajectories
included.

The peer registry is open (:func:`register_peer`), so tests can mount a
deliberately broken peer and prove the runner catches it.
"""

from __future__ import annotations

from typing import Callable

from ..framework.addressing import ip_to_int
from ..framework.bfd import BFDControlHeader
from ..framework.igmp import ALL_HOSTS_GROUP, IGMPHeader, make_query, make_report
from ..framework.ip import PROTO_IGMP, IPv4Header, make_ip_packet
from ..framework.ntp import PeerVariables
from ..netsim.bfd_session import BFDSession
from ..netsim.core import LinkFaults, Network, Node
from ..netsim.generated import GeneratedBFDSession, IGMPQueryScenario
from ..netsim.host import Host
from ..netsim.icmp_impl import ReferenceICMP
from ..netsim.igmp_switch import ForwardingIGMPSwitch, IGMPSwitch
from ..netsim.ntp_peer import NTPPeer, reference_timeout_predicate
from ..netsim.ping import Ping
from ..netsim.router import Router
from ..netsim.topologies import (
    ROUTER_CLIENT_SIDE,
    SERVER1_IP,
    SERVER2_IP,
    UNKNOWN_DESTINATION,
    course_topology,
)
from ..netsim.traceroute import Traceroute
from .generator import Episode

#: Backends the runner can execute as simulated peers.  The C backend is
#: text-only and participates via emitted-source fingerprints instead
#: (see :mod:`repro.fuzz.runner`).
EXECUTABLE_BACKENDS = ("reference", "python", "interp")

_DESTINATIONS = {
    "router": ROUTER_CLIENT_SIDE,
    "server1": SERVER1_IP,
    "server2": SERVER2_IP,
    "unknown": UNKNOWN_DESTINATION,
}


# -- reference peers -----------------------------------------------------------

class ReferenceIGMP:
    """The hand-written side of the IGMP differential: framework codecs
    wrapped to present the same datagram surface as ``GeneratedIGMP``."""

    def query_datagram(self, source_address: int) -> bytes:
        return make_ip_packet(
            src=source_address, dst=ALL_HOSTS_GROUP, protocol=PROTO_IGMP,
            data=make_query().pack(), ttl=1,
        ).pack()

    def report_datagram(self, source_address: int, group_address: int) -> bytes:
        return make_ip_packet(
            src=source_address, dst=group_address, protocol=PROTO_IGMP,
            data=make_report(group_address).pack(), ttl=1,
        ).pack()


class _ReferenceNTP:
    """The reference Table 11 dispatch behind the adapter surface."""

    @staticmethod
    def timeout_predicate(peer: PeerVariables) -> bool:
        return reference_timeout_predicate(peer)


class _ReferenceBFDPeer:
    def make_session(self) -> BFDSession:
        return BFDSession()


class _GeneratedBFDPeer:
    def __init__(self, unit, backend: str) -> None:
        self.unit = unit
        self.backend = backend

    def make_session(self) -> GeneratedBFDSession:
        return GeneratedBFDSession.from_unit(self.unit, backend=self.backend)


# -- peer registry -------------------------------------------------------------

PeerFactory = Callable[[object], object]

_PEER_FACTORIES: dict[tuple[str, str], PeerFactory] = {}


def register_peer(protocol: str, backend: str, factory: PeerFactory) -> None:
    """Mount a peer factory for one matrix cell.

    ``factory(unit)`` receives the protocol's IR program (None for peers
    that do not need it) and returns the implementation object the
    protocol's replay functions drive.  Tests use this to inject broken
    peers under a fresh backend name.
    """
    _PEER_FACTORIES[(protocol.upper(), backend)] = factory


def _generated_factory(protocol: str, backend: str) -> PeerFactory:
    def factory(unit):
        if unit is None:
            raise ValueError(f"backend {backend!r} needs the {protocol} "
                             "code unit, got None")
        if protocol == "BFD":
            return _GeneratedBFDPeer(unit, backend)
        from ..runtime.harness import generated_implementation

        return generated_implementation(protocol, unit, backend=backend)

    return factory


def _install_builtin_peers() -> None:
    _PEER_FACTORIES[("ICMP", "reference")] = lambda unit: ReferenceICMP()
    _PEER_FACTORIES[("IGMP", "reference")] = lambda unit: ReferenceIGMP()
    _PEER_FACTORIES[("NTP", "reference")] = lambda unit: _ReferenceNTP()
    _PEER_FACTORIES[("BFD", "reference")] = lambda unit: _ReferenceBFDPeer()
    for protocol in ("ICMP", "IGMP", "NTP", "BFD"):
        for backend in ("python", "interp"):
            _PEER_FACTORIES[(protocol, backend)] = _generated_factory(
                protocol, backend
            )


_install_builtin_peers()


def make_peer(protocol: str, backend: str, unit) -> object:
    try:
        factory = _PEER_FACTORIES[(protocol.upper(), backend)]
    except KeyError:
        known = sorted({b for (p, b) in _PEER_FACTORIES
                        if p == protocol.upper()})
        raise KeyError(
            f"no peer factory for {protocol}/{backend}; registered "
            f"backends for {protocol}: {known}"
        ) from None
    return factory(unit)


# -- shared trace helpers ------------------------------------------------------

def _hexes(captures: list[bytes]) -> list[str]:
    return [data.hex() for data in captures]


def _episode_faults(params: dict) -> LinkFaults:
    return LinkFaults(
        drop=params.get("drop", 0.0),
        duplicate=params.get("duplicate", 0.0),
        delay=params.get("delay", 0.0),
        seed=params.get("fault_seed", 0),
    )


def _ping_trace(result, client, router) -> dict:
    return {
        "transmitted": result.transmitted,
        "received": result.received,
        "replies": [[r.sequence, r.source, r.length] for r in result.replies],
        "errors": [[e.icmp_type, e.icmp_code, e.source] for e in result.errors],
        "rejections": list(result.rejections),
        "client_rx": _hexes(client.received_capture),
        "router_tx": _hexes(router.sent_capture),
    }


# -- ICMP replay ---------------------------------------------------------------

def _replay_icmp_ping(params: dict, peer, seed: int) -> dict:
    topology = course_topology(
        implementation=peer,
        require_tos_zero=params.get("require_tos_zero", False),
    )
    pinger = Ping(topology.client, payload_len=params["payload_len"],
                  ttl=params["ttl"])
    result = pinger.run(ip_to_int(_DESTINATIONS[params["dest"]]),
                        count=params["count"], tos=params.get("tos", 0))
    return _ping_trace(result, topology.client, topology.router)


def _replay_icmp_fault_ping(params: dict, peer, seed: int) -> dict:
    topology = course_topology(implementation=peer)
    # links[0] is the client-router wire (the first connect() call).
    topology.network.install_faults(topology.network.links[0],
                                    _episode_faults(params))
    pinger = Ping(topology.client, payload_len=params["payload_len"])
    result = pinger.run(ip_to_int(_DESTINATIONS[params["dest"]]),
                        count=params["count"])
    trace = _ping_trace(result, topology.client, topology.router)
    trace["fault_log"] = list(topology.network.fault_log)
    return trace


def _replay_icmp_traceroute_switch(params: dict, peer, seed: int) -> dict:
    """Traceroute through an IGMP-aware switch sitting on the client LAN.

    The switch floods ICMP/UDP without touching TTL, so the discovered
    path must be [router, server1] regardless of memberships — while the
    same device keeps answering membership queries in the same episode.
    """
    network = Network()
    client = Host("client")
    client.add_interface("eth0", "10.0.1.100/24")
    switch = ForwardingIGMPSwitch("switch")
    switch.add_interface("eth0", "10.0.1.2/24")
    switch.add_interface("eth1", "10.0.1.3/24")
    router = Router("router", implementation=peer)
    router.add_interface("eth0", "10.0.1.1/24")
    router.add_interface("eth1", "192.168.2.1/24")
    router.add_route("10.0.1.0/24", "eth0")
    router.add_route("192.168.2.0/24", "eth1")
    server1 = Host("server1")
    server1.add_interface("eth0", "192.168.2.2/24")
    for node in (client, switch, router, server1):
        network.add_node(node)
    network.connect("client", "eth0", "switch", "eth0")
    network.connect("switch", "eth1", "router", "eth0")
    network.connect("router", "eth1", "server1", "eth0")
    for member, group in params.get("memberships", ()):
        switch.join(ip_to_int(member), ip_to_int(group))

    destination = SERVER1_IP if params["dest"] == "server1" else ROUTER_CLIENT_SIDE
    result = Traceroute(client).run(ip_to_int(destination),
                                    max_ttl=params["max_ttl"])
    report_count = 0
    if params.get("query_after"):
        cursor = len(switch.sent_capture)
        query = make_ip_packet(
            src=client.interface("eth0").address, dst=ALL_HOSTS_GROUP,
            protocol=PROTO_IGMP, data=make_query().pack(), ttl=1,
        )
        client.send(query)
        network.run()
        report_count = len(switch.sent_capture) - cursor
    return {
        "path": result.path(),
        "reached": result.destination_reached,
        "rejections": list(result.rejections),
        "router_tx": _hexes(router.sent_capture),
        "switch_tx": _hexes(switch.sent_capture),
        "queries_seen": len(switch.queries_seen),
        "reports": report_count,
    }


# -- IGMP replay ---------------------------------------------------------------

def _igmp_scenario(peer, memberships, faults: LinkFaults | None = None,
                   ) -> IGMPQueryScenario:
    network = Network()
    sender = Host("querier")
    sender.add_interface("eth0", "10.0.5.2/24")
    switch = IGMPSwitch("switch")
    switch.add_interface("eth0", "10.0.5.1/24")
    network.add_node(sender)
    network.add_node(switch)
    network.connect("querier", "eth0", "switch", "eth0", faults=faults)
    for member, group in memberships:
        switch.join(ip_to_int(member), ip_to_int(group))
    return IGMPQueryScenario(network=network, sender=sender, switch=switch,
                             implementation=peer)


def _igmp_query_trace(scenario: IGMPQueryScenario, queries: int,
                      network: Network) -> dict:
    rounds = []
    for _ in range(queries):
        reports = scenario.run_query()
        rounds.append([[r.type, r.group_address] for r in reports])
    return {
        "rounds": rounds,
        "query_log": [list(entry) for entry in scenario.query_log],
        "querier_tx": _hexes(scenario.sender.sent_capture),
        "switch_tx": _hexes(scenario.switch.sent_capture),
        "fault_log": list(network.fault_log),
    }


def _replay_igmp_query(params: dict, peer, seed: int) -> dict:
    scenario = _igmp_scenario(peer, params.get("memberships", ()))
    return _igmp_query_trace(scenario, params["queries"], scenario.network)


def _replay_igmp_fault_query(params: dict, peer, seed: int) -> dict:
    scenario = _igmp_scenario(peer, params.get("memberships", ()),
                              faults=_episode_faults(params))
    return _igmp_query_trace(scenario, params["queries"], scenario.network)


def _replay_igmp_report(params: dict, peer, seed: int) -> dict:
    source = ip_to_int("10.0.5.2")
    reports = []
    for group in params["groups"]:
        datagram = peer.report_datagram(source, ip_to_int(group))
        reports.append(datagram.hex() if datagram is not None else None)
    return {"reports": reports}


# -- NTP replay ----------------------------------------------------------------

def _ntp_trace(predicate, mode: int, threshold: int,
               tick_seconds: list[int]) -> dict:
    peer = NTPPeer(
        local_address=ip_to_int("10.0.9.2"),
        remote_address=ip_to_int("10.0.9.1"),
        peer=PeerVariables(mode=mode, threshold=threshold),
        timeout_predicate=predicate,
    )
    trajectory = []
    for seconds in tick_seconds:
        packet = peer.tick(seconds)
        trajectory.append([peer.peer.timer, peer.peer.timeouts_fired,
                           packet.hex() if packet is not None else None])
    return {"trajectory": trajectory,
            "emitted": _hexes(peer.emitted_packets)}


def _replay_ntp_timeout(params: dict, peer, seed: int) -> dict:
    return _ntp_trace(peer.timeout_predicate, params["mode"],
                      params["threshold"], [1] * params["duration"])


def _replay_ntp_mode_matrix(params: dict, peer, seed: int) -> dict:
    return {
        "modes": [
            [mode, _ntp_trace(peer.timeout_predicate, mode,
                              params["threshold"], [1] * params["duration"])]
            for mode in params["modes"]
        ]
    }


def _replay_ntp_tick_jitter(params: dict, peer, seed: int) -> dict:
    return _ntp_trace(peer.timeout_predicate, params["mode"],
                      params["threshold"], list(params["ticks"]))


# -- BFD replay ----------------------------------------------------------------

#: State variables excluded from the differential snapshot.  The paper's
#: generated §6.8.6 subset covers the state-management sentences; the
#: diagnostic-code sentence ("set bfd.LocalDiag ...") is outside that
#: winnowed set, so the reference transcription sets LocalDiag where the
#: generated code (faithfully to its scope) does not.  Comparing it would
#: flag a scope difference, not an implementation divergence.
BFD_SNAPSHOT_EXCLUDED = frozenset({"LocalDiag"})


def _bfd_snapshot(session) -> dict:
    return {name: int(value)
            for name, value in session.state.snapshot().items()
            if name not in BFD_SNAPSHOT_EXCLUDED}


def bfd_demux(packet: BFDControlHeader, state) -> str | None:
    """§6.8.6 validation steps *outside* the generated sentence scope.

    The generated reception code implements the winnowed sentence set
    (version, detect mult, multipoint, discriminator checks); the Length
    check and the "Your Discriminator zero outside Down/AdminDown" check
    fall outside it.  The differential harness applies them here — one
    shared demultiplexer in front of every backend, reference included —
    so all implementations are compared over the generated contract's
    domain and a pre-dropped packet shows up identically in every trace.
    """
    from ..framework.bfd import STATE_ADMIN_DOWN, STATE_DOWN

    if packet.length < 24:
        return "length too short"
    if (packet.your_discriminator == 0
            and packet.state not in (STATE_DOWN, STATE_ADMIN_DOWN)):
        return "your discriminator zero outside Down/AdminDown"
    return None


def deliver_bfd(session, packet: BFDControlHeader) -> str | None:
    """Hand one control packet to a session, reference or generated.

    Runs the shared demux prefix (:func:`bfd_demux`) first; returns the
    pre-drop reason (without touching the session) or None after normal
    delivery.  The reference transcription performs the "select the
    session by Your Discriminator" lookup inline; the generated reception
    code asks the demultiplexer via ``ctx.session_found()`` — model that
    lookup here so both paths see the same world: a session exists exactly
    when Your Discriminator is zero or names this session's local
    discriminator.
    """
    reason = bfd_demux(packet, session.state)
    if reason is not None:
        return reason
    if hasattr(session, "session_exists"):
        session.session_exists = (
            packet.your_discriminator == 0
            or packet.your_discriminator == session.state.LocalDiscr
        )
    session.receive_control(packet)
    return None


class BFDNode(Node):
    """A node that speaks raw BFD control packets over a point-to-point
    link — the substrate for handshakes across lossy/reordering wires."""

    def __init__(self, name: str, session) -> None:
        super().__init__(name)
        self.session = session

    def receive(self, data: bytes, interface: str) -> None:
        try:
            packet = BFDControlHeader.unpack(data)
        except ValueError:
            return
        deliver_bfd(self.session, packet)

    def send_round(self, interface: str = "eth0") -> None:
        if self.session.periodic_transmission_enabled:
            self.transmit(interface, self.session.send_control().pack())


def _replay_bfd_handshake(params: dict, peer, seed: int) -> dict:
    local = peer.make_session()
    local.state.LocalDiscr = params["local_discr"]
    remote = BFDSession()
    remote.state.LocalDiscr = params["remote_discr"]
    wire = []
    snapshots = []
    for _ in range(params["rounds"]):
        outbound = local.send_control()
        deliver_bfd(remote, outbound)
        inbound = remote.send_control()
        deliver_bfd(local, inbound)
        wire.append([outbound.pack().hex(), inbound.pack().hex()])
        snapshots.append(_bfd_snapshot(local))
    if params.get("demand_after"):
        remote.state.DemandMode = 1
        inbound = remote.send_control()
        deliver_bfd(local, inbound)
        wire.append([None, inbound.pack().hex()])
        snapshots.append(_bfd_snapshot(local))
    return {
        "snapshots": snapshots,
        "wire": wire,
        "transmission_enabled": local.periodic_transmission_enabled,
        "discards": len(local.discarded),
    }


def _replay_bfd_packet_storm(params: dict, peer, seed: int) -> dict:
    session = peer.make_session()
    session.state.LocalDiscr = params["local_discr"]
    session.state.SessionState = params["initial_state"]
    steps = []
    for fields in params["packets"]:
        predropped = deliver_bfd(session, BFDControlHeader(**fields))
        steps.append({
            "snapshot": _bfd_snapshot(session),
            "discards": len(session.discarded),
            "predropped": predropped,
            "transmission_enabled": session.periodic_transmission_enabled,
        })
    return {"steps": steps}


def _replay_bfd_lossy_handshake(params: dict, peer, seed: int) -> dict:
    local = peer.make_session()
    local.state.LocalDiscr = params["local_discr"]
    remote = BFDSession()
    remote.state.LocalDiscr = params["remote_discr"]
    network = Network()
    local_node = BFDNode("local", local)
    local_node.add_interface("eth0", "10.0.7.1/24")
    remote_node = BFDNode("remote", remote)
    remote_node.add_interface("eth0", "10.0.7.2/24")
    network.add_node(local_node)
    network.add_node(remote_node)
    network.connect("local", "eth0", "remote", "eth0",
                    faults=_episode_faults(params))
    snapshots = []
    for _ in range(params["rounds"]):
        local_node.send_round()
        remote_node.send_round()
        network.run()
        snapshots.append([_bfd_snapshot(local), len(local.discarded),
                          local.periodic_transmission_enabled])
    return {
        "snapshots": snapshots,
        "fault_log": list(network.fault_log),
        "local_tx": _hexes(local_node.sent_capture),
        "remote_tx": _hexes(remote_node.sent_capture),
    }


_REPLAYERS = {
    ("ICMP", "ping"): _replay_icmp_ping,
    ("ICMP", "traceroute-switch"): _replay_icmp_traceroute_switch,
    ("ICMP", "fault-ping"): _replay_icmp_fault_ping,
    ("IGMP", "query"): _replay_igmp_query,
    ("IGMP", "report"): _replay_igmp_report,
    ("IGMP", "fault-query"): _replay_igmp_fault_query,
    ("NTP", "timeout"): _replay_ntp_timeout,
    ("NTP", "mode-matrix"): _replay_ntp_mode_matrix,
    ("NTP", "tick-jitter"): _replay_ntp_tick_jitter,
    ("BFD", "handshake"): _replay_bfd_handshake,
    ("BFD", "packet-storm"): _replay_bfd_packet_storm,
    ("BFD", "lossy-handshake"): _replay_bfd_lossy_handshake,
}


def replay(episode: Episode, peer) -> dict:
    """Run one episode against one peer; the JSON-safe trace is the
    differential observable."""
    try:
        replayer = _REPLAYERS[(episode.protocol, episode.family)]
    except KeyError:
        raise KeyError(
            f"no replayer for {episode.protocol}/{episode.family}"
        ) from None
    return replayer(episode.params, peer, episode.seed)
