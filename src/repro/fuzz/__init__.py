"""Differential scenario fuzzer and cross-backend interop matrix.

A seeded pipeline over the network simulator:

1. :class:`~repro.fuzz.generator.TraceGenerator` turns one integer seed
   into deterministic episodes — randomized packet traces, peer event
   schedules, multi-node topologies with seeded link faults;
2. :class:`~repro.fuzz.runner.DifferentialRunner` replays each episode
   against every executable backend (hand-written reference, exec-Python,
   IR interpreter) and demands exact trace equality, with per-protocol
   invariant oracles (:mod:`repro.fuzz.oracles`) guarding against
   agreed-upon wrongness and the C backend locked via emitted-source
   fingerprints;
3. divergent episodes shrink to replayable JSON case files
   (:mod:`repro.fuzz.shrink`);
4. the verdicts land in an :class:`~repro.fuzz.matrix.InteropMatrix`
   recorded into ``BENCH_pipeline.json`` and gated in CI
   (``scripts/ci.sh fuzz-gate``).

Exposed via ``python -m repro fuzz`` and ``SageService.fuzz``.
"""

from .generator import FAMILIES, PROTOCOLS, Episode, TraceGenerator, synthesize
from .matrix import InteropMatrix, MatrixCell, bench_keys, record_bench
from .oracles import ORACLES, check_trace, register_oracle
from .runner import (
    DifferentialRunner,
    Divergence,
    FuzzReport,
    Violation,
    first_difference,
    run_fuzz,
)
from .scenarios import (
    EXECUTABLE_BACKENDS,
    BFDNode,
    ReferenceIGMP,
    deliver_bfd,
    make_peer,
    register_peer,
    replay,
)
from .shrink import case_name, load_case, save_case, shrink

__all__ = [
    "BFDNode",
    "DifferentialRunner",
    "Divergence",
    "EXECUTABLE_BACKENDS",
    "Episode",
    "FAMILIES",
    "FuzzReport",
    "InteropMatrix",
    "MatrixCell",
    "ORACLES",
    "PROTOCOLS",
    "ReferenceIGMP",
    "TraceGenerator",
    "Violation",
    "bench_keys",
    "case_name",
    "check_trace",
    "deliver_bfd",
    "first_difference",
    "load_case",
    "make_peer",
    "record_bench",
    "register_peer",
    "replay",
    "run_fuzz",
    "save_case",
    "shrink",
    "synthesize",
]
