"""Lightweight instrumentation counters for the parser hot path.

One process-global :class:`ParseProfile` accumulates what the agenda-driven
indexed backend (:mod:`.indexed`) and the fused normalizer (:mod:`.values`)
actually did: agenda pops and scheduled targets, cells visited vs seeded
from the cross-sentence span memo, per-memo hit/miss counts, and budget
drops.  Counting is always on — the counters are plain integer attribute
increments, a few per agenda pop, which is noise next to the term
construction they describe — so a snapshot is always truthful for the
process, and a *delta* between two snapshots is truthful for any bracketed
region (one ``ParseStage.run_batch``, one benchmark sweep).

Consumers:

* ``SageService.parse_diagnostics`` wraps each batch parse in a delta and
  reports it under the ``"profile"`` key;
* ``python -m repro parse --profile`` renders the same delta;
* ``benchmarks/pipeline_smoke.py`` records the head-to-head sweep's
  counters into ``BENCH_pipeline.json`` and gates the span-memo reuse rate
  (formulaic RFC prose must keep reusing spans, or the cross-sentence
  memo silently stopped paying for itself).

Hit *rates* are derived at snapshot time, never stored: a rate is only
meaningful relative to the window it was measured over.
"""

from __future__ import annotations

__all__ = ["ParseProfile", "PROFILE", "profile_snapshot", "reset_profile",
           "profile_delta"]

#: The raw counter names, in reporting order.  Each is a monotonically
#: increasing int on :data:`PROFILE`.
COUNTER_NAMES = (
    "parses",               # parse_forest calls (indexed backend)
    "agenda_pops",          # targets popped off the combination agenda
    "agenda_scheduled",     # distinct targets ever pushed
    "cells_visited",        # popped targets actually combined (memo misses)
    "cells_seeded",         # popped targets seeded whole from the span memo
    "span_memo_hits",       # span-memo probes answered
    "span_memo_misses",     # span-memo probes that had to combine
    "items_reused",         # packed items adopted from the span memo
    "production_memo_hits",   # structural production outcomes answered
    "production_memo_misses",
    "apply_memo_hits",      # normal-form applications answered by identity
    "apply_memo_misses",
    "lexical_cache_hits",   # lexical span lookups answered
    "lexical_cache_misses",
    "budget_drops",         # items the PruneBudget rejected (counted drops)
    "deferred_items",       # combined items inserted without building terms
    "forced_items",         # deferred items whose term was later demanded
)

#: hit/miss counter pairs → the derived rate key reported in snapshots.
_RATES = (
    ("span_memo_hits", "span_memo_misses", "span_reuse_rate"),
    ("production_memo_hits", "production_memo_misses",
     "production_memo_hit_rate"),
    ("apply_memo_hits", "apply_memo_misses", "apply_memo_hit_rate"),
    ("lexical_cache_hits", "lexical_cache_misses", "lexical_cache_hit_rate"),
)


class ParseProfile:
    """A bundle of monotonic counters (see module docstring)."""

    __slots__ = COUNTER_NAMES

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in COUNTER_NAMES:
            setattr(self, name, 0)

    def counts(self) -> dict:
        """The raw counters as a plain dict (JSON-safe)."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def snapshot(self) -> dict:
        """Raw counters plus the derived hit rates (JSON-safe)."""
        return _with_rates(self.counts())


def _with_rates(counts: dict) -> dict:
    out = dict(counts)
    for hits, misses, rate in _RATES:
        total = counts[hits] + counts[misses]
        out[rate] = (counts[hits] / total) if total else 0.0
    return out


#: The process-global profile every parser in this process reports into.
PROFILE = ParseProfile()


def profile_snapshot() -> dict:
    """Counters-plus-rates for everything parsed so far in this process."""
    return PROFILE.snapshot()


def reset_profile() -> None:
    """Zero the process-global counters (test/benchmark bracketing)."""
    PROFILE.reset()


def profile_delta(before: dict, after: dict) -> dict:
    """The counter delta ``after - before``, with rates recomputed over the
    delta window.  Both arguments are ``counts()``/``snapshot()`` dicts."""
    delta = {name: after[name] - before[name] for name in COUNTER_NAMES}
    return _with_rates(delta)
