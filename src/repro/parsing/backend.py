"""The parser-backend protocol and its registry.

A *parser backend* is anything that turns a chunked token stream into a
:class:`~repro.ccg.chart.ParseResult`: ``parse(tokens)``, a ``lexicon``
attribute, and a stable ``name`` string that becomes part of every
parse-cache key built over it (two backends never share cache entries).

Backends register by name; the pipeline resolves them through
:func:`create_parser` (directly or via
``ProtocolRegistry.parser(backend=...)``), so adding a backend is one
``register_parser_backend`` call — no edits across layers.  The bundled
backends:

* ``reference`` — the plain CKY chart (:class:`~repro.ccg.chart.
  CCGChartParser`), the fixed point every other backend must match;
* ``indexed`` — the category-indexed packed-forest parser
  (:class:`~repro.parsing.indexed.IndexedChartParser`), the default.

Parity between them — identical grounded-LF sets, statuses, and generated
code on every bundled corpus in both pipeline modes — is locked by
``tests/test_parsing.py`` and gated in ``benchmarks/pipeline_smoke.py``.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from ..ccg.chart import CCGChartParser, ParseResult
from ..ccg.lexicon import Lexicon
from ..nlp.tokenizer import Token
from .indexed import IndexedChartParser

#: The backend the pipeline uses when nothing selects one explicitly.
DEFAULT_PARSER_BACKEND = "indexed"

#: The backend used as the parity baseline.
REFERENCE_PARSER_BACKEND = "reference"


@runtime_checkable
class ParserBackend(Protocol):
    """What every parser backend provides (structural protocol)."""

    name: str
    lexicon: Lexicon

    def parse(self, tokens: list[Token]) -> ParseResult:
        """Parse one chunked token stream into grounded logical forms."""
        ...


class UnknownParserBackendError(KeyError):
    """Lookup of a parser backend that was never registered."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown parser backend {name!r}: registered backends are "
            f"{', '.join(known) or '(none)'}"
        )

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0]


_BACKENDS: dict[str, Callable[..., ParserBackend]] = {}


def register_parser_backend(name: str, factory: Callable[..., ParserBackend],
                            replace: bool = False) -> None:
    """Register ``factory`` (``factory(lexicon, **kwargs) → backend``).

    Re-registering an existing name requires ``replace=True``.
    """
    if name in _BACKENDS and not replace:
        raise ValueError(
            f"parser backend {name!r} is already registered; "
            "pass replace=True to override"
        )
    _BACKENDS[name] = factory


def parser_backend_names() -> list[str]:
    """Every registered backend name, registration order."""
    return list(_BACKENDS)


def create_parser(name: str | None, lexicon: Lexicon, **kwargs) -> ParserBackend:
    """Instantiate the backend ``name`` (None → the default) over ``lexicon``."""
    backend = name or DEFAULT_PARSER_BACKEND
    try:
        factory = _BACKENDS[backend]
    except KeyError:
        raise UnknownParserBackendError(backend, parser_backend_names()) from None
    return factory(lexicon, **kwargs)


def backend_id(parser) -> str:
    """The cache-key identity of a parser instance.

    An instance-level ``name`` wins, then a ``name`` the parser's *own*
    class defines; anything else — including a subclass that overrides
    ``parse`` but forgot to claim a name, which would otherwise inherit
    its base backend's — identifies by class name, so ad-hoc parsers
    never collide with the bundled backends' cache entries.
    """
    instance_name = parser.__dict__.get("name") if hasattr(parser, "__dict__") else None
    if instance_name:
        return instance_name
    cls = type(parser)
    own_name = cls.__dict__.get("name")
    if own_name:
        return own_name
    return cls.__name__


register_parser_backend(REFERENCE_PARSER_BACKEND, CCGChartParser)
register_parser_backend(DEFAULT_PARSER_BACKEND, IndexedChartParser)
