"""The optimized chart backend: category-indexed cells over a packed forest.

Same grammar, same combinators, same cells — different enumeration.  Where
the reference backend tries every rule on every cell×cell item pair, this
backend keeps per-cell indexes (items by exact category, forward/backward
functions by result category, conjunctions, saturated constituents) and
only visits pairs whose categories can actually unify under some rule:

* forward application ``X/Y Y``: each forward function looks up exactly
  the right-cell items of category ``Y``;
* forward composition ``X/Y Y/Z``: ... the right-cell forward functions
  whose *result* is ``Y``;
* backward application/composition mirror with the left cell;
* coordination: the left cell's CONJ items × the right cell's saturated
  constituents.

Candidate productions are tagged ``(mid, left_index, right_index, rule)``
and sorted before insertion, which reproduces the reference backend's
insertion sequence exactly — so semantic dedup keeps the *same*
representative (same provenance spans and triggers), cells truncate at the
same point under the same budget, and the enumerated logical forms match
the reference list element-for-element.  Parity is therefore structural;
the test suite and the benchmark gate verify it corpus-wide.

Semantics flow as the fused normalizer's ``(sem, sid, grounded)`` triples
(:mod:`.values`): combining two items substitutes into already-normal
forms, building the result term, its dedup id, and its groundedness in one
pass.  On top of that sits a process-global *production memo*: the
structural outcome of (rule, operand categories, operand structures) is
deterministic, so once any sentence anywhere has derived a combination
shape, every later duplicate derivation — the majority, CCG's spurious
ambiguity being what it is — resolves to "pack one more backpointer" with
a single dict probe and no term construction at all.
"""

from __future__ import annotations

import gc
from operator import itemgetter

from ..ccg.categories import (
    CONJ,
    FORWARD,
    NP,
    S,
    Category,
    Func,
    backward,
    category_id,
    forward,
)
from ..ccg.chart import (
    MAX_CELL_ITEMS,
    CCGChartParser,
    ParseResult,
    lexical_span_items,
    strip_terminal_punct,
)
from ..ccg.combinators import (
    RULE_BACKWARD_APPLICATION,
    RULE_BACKWARD_COMPOSITION,
    RULE_COORDINATION,
    RULE_FORWARD_APPLICATION,
    RULE_FORWARD_COMPOSITION,
    RULE_NAMES,
)
from ..ccg.lexicon import Lexicon
from ..ccg.semantics import Const
from ..nlp.tokenizer import Token
from .forest import LEXICAL_RULE, PackedItem, ParseForest, PruneBudget
from .values import (
    Triple,
    apply_triple,
    lam_wrap,
    make_call_triple,
    neutral,
    normalize,
    reset_apply_memo,
)

#: (rule, left category id, left sid, right category id, right sid) →
#: tuple of (category, category id, sid, grounded) per production.
#: Structure-only and therefore process-global: provenance does not
#: participate, so a hit is valid for any derivation with
#: structurally-equal operands.
_PRODUCTION_MEMO: dict[tuple, tuple] = {}

#: Lexical span cache: the chart items (category, stamped sem, normalized
#: triple) a given surface span yields are a pure function of the lexicon
#: content, the span's tokens, and the start position, so they are shared
#: process-wide.  Sharing the *sem objects* across sentences is what
#: feeds the apply memo in :mod:`.values` — identical phrases at
#: identical offsets re-derive combination results by dict probe.
#:
#: The cache is generational: one inner dict per lexicon fingerprint (an
#: edited or different lexicon can never be served another grammar's
#: items), bounded to the most recent :data:`_LEXICAL_GENERATIONS`
#: fingerprints so a long-lived service editing its lexicon does not
#: accumulate orphaned generations forever.  Inner keys: single tokens by
#: (start, text, kind); multiword spans by (start, lowered words).
#: Misses (spans yielding no items) cache as empty tuples.
_LEXICAL_CACHE: dict[str, dict[tuple, tuple]] = {}
_LEXICAL_GENERATIONS = 4


def _lexical_generation(fingerprint: str) -> dict[tuple, tuple]:
    generation = _LEXICAL_CACHE.get(fingerprint)
    if generation is None:
        evicted = False
        while len(_LEXICAL_CACHE) >= _LEXICAL_GENERATIONS:
            _LEXICAL_CACHE.pop(next(iter(_LEXICAL_CACHE)))
            evicted = True
        if evicted:
            # The apply memo pins sem objects from the dropped
            # generation's items; those entries can never hit again, so
            # release them wholesale (live entries rebuild on demand).
            reset_apply_memo()
        generation = _LEXICAL_CACHE.setdefault(fingerprint, {})
    return generation


class _Cell:
    """One chart cell plus the indexes the combination loop consults."""

    __slots__ = ("items", "by_key", "by_cat", "fwd", "bwd",
                 "fwd_by_result", "bwd_by_result", "conj", "non_func")

    def __init__(self) -> None:
        self.items: list[PackedItem] = []
        #: (category id, structural id) → item, for insertion-time dedup.
        self.by_key: dict[tuple[int, int], PackedItem] = {}
        self.by_cat: dict[int, list] = {}
        #: (index, item, argument category id) for function categories.
        self.fwd: list = []
        self.bwd: list = []
        self.fwd_by_result: dict[int, list] = {}
        self.bwd_by_result: dict[int, list] = {}
        self.conj: list = []
        self.non_func: list = []

    def insert(self, item: PackedItem) -> None:
        index = len(self.items)
        self.items.append(item)
        key = (item.catid, item.sid)
        if key not in self.by_key:
            self.by_key[key] = item
        category = item.category
        self.by_cat.setdefault(item.catid, []).append((index, item))
        if isinstance(category, Func):
            # Function entries carry their argument-category id so the
            # candidate scan probes the opposite cell with plain ints.
            entry = (index, item, category_id(category.arg))
            result_cid = category_id(category.result)
            if category.slash == FORWARD:
                self.fwd.append(entry)
                self.fwd_by_result.setdefault(result_cid, []).append((index, item))
            else:
                self.bwd.append(entry)
                self.bwd_by_result.setdefault(result_cid, []).append((index, item))
        else:
            entry = (index, item)
            self.non_func.append(entry)
            if category == CONJ:
                self.conj.append(entry)


class IndexedChartParser(CCGChartParser):
    """The ``indexed`` parser backend (see module docstring).

    Subclasses :class:`~repro.ccg.chart.CCGChartParser` for interface
    compatibility (``lexicon``, ``max_cell_items``, ``parse``); the chart
    construction is entirely its own.
    """

    name = "indexed"

    def __init__(self, lexicon: Lexicon, max_cell_items: int = MAX_CELL_ITEMS,
                 budget: PruneBudget | None = None) -> None:
        if budget is None:
            budget = PruneBudget(max_cell_items=max_cell_items)
        super().__init__(lexicon, budget.max_cell_items)
        self.budget = budget

    # -- public API ------------------------------------------------------------
    def parse(self, tokens: list[Token]) -> ParseResult:
        return self.parse_forest(tokens).to_result()

    def parse_forest(self, tokens: list[Token]) -> ParseForest:
        """Parse into a :class:`~repro.parsing.forest.ParseForest`."""
        tokens = strip_terminal_punct(tokens)
        length = len(tokens)
        if not tokens:
            return ParseForest(0, {}, [], 0, self.budget, 0, backend=self.name)
        cells: dict[tuple[int, int], _Cell] = {}
        cell_keys: set[tuple[int, int]] = set()
        covered = [False] * length
        # Chart construction is allocation-dense and most of what it
        # builds is either pinned in the process-global memos or garbage
        # by the end of the sentence; letting the cyclic collector run
        # mid-parse means re-traversing the ever-growing memo graph on
        # every generation sweep, which dominates cold-parse time.  Pause
        # it for the (milliseconds-long) construction window.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            unknown = self._fill_lexical(tokens, cells, cell_keys, covered)
            dropped = self._combine_spans(length, cells, cell_keys)
        finally:
            if gc_was_enabled:
                gc.enable()
        return ParseForest(
            length=length,
            cells={span: cells[span].items for span in cells},
            unknown_words=unknown,
            dropped_items=dropped,
            budget=self.budget,
            cells_filled=len(cell_keys),
            backend=self.name,
        )

    # -- lexical spans ---------------------------------------------------------
    def _fill_lexical(self, tokens: list[Token], cells, cell_keys,
                      covered: list[bool]) -> list[str]:
        length = len(tokens)
        words_lower = [token.lower for token in tokens]
        matches_by_start = [
            dict(self.lexicon.iter_matches(words_lower, start))
            for start in range(length)
        ]
        # Same cell-filling order as the reference chart: span length
        # ascending, start ascending.
        lexical_cache = _lexical_generation(self.lexicon.fingerprint())
        for span_len in range(1, min(self.lexicon.max_phrase_words, length) + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                if span_len == 1:
                    token = tokens[start]
                    cache_key = (start, token.text, token.kind)
                else:
                    entries = matches_by_start[start].get(end, ())
                    if not entries:
                        continue  # multiword spans only exist via the trie
                    cache_key = (start, tuple(words_lower[start:end]))
                cached = lexical_cache.get(cache_key)
                if cached is None:
                    items = lexical_span_items(
                        self.lexicon, tokens, start, end,
                        entries=(matches_by_start[start].get(end, ())
                                 if span_len == 1 else entries),
                    )
                    # The cached sem is the verbatim (unreduced, stamped)
                    # lexical semantics — exactly what the reference cell
                    # carries — alongside the normalized triple that
                    # drives combination and dedup.
                    cached = tuple(
                        (item.category, item.sem, normalize(item.sem, {}))
                        for item in items
                    )
                    lexical_cache[cache_key] = cached
                if not cached:
                    continue
                for position in range(start, end):
                    covered[position] = True
                cell = cells.get((start, end))
                if cell is None:
                    cell = cells[(start, end)] = _Cell()
                    cell_keys.add((start, end))
                for category, sem, ntriple in cached:
                    packed = PackedItem(category=category, sem=sem,
                                        ntriple=ntriple)
                    packed.derivations.append((LEXICAL_RULE, None, None))
                    cell.insert(packed)
        return [
            tokens[position].text
            for position in range(length)
            if not covered[position]
        ]

    # -- combination -----------------------------------------------------------
    def _combine_spans(self, length: int, cells, cell_keys) -> int:
        dropped = 0
        budget = self.budget.max_cell_items
        for span_len in range(2, length + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                cell_keys.add((start, end))
                candidates = self._candidates(start, end, cells)
                if not candidates:
                    continue
                candidates.sort(key=_CANDIDATE_ORDER)
                cell = cells.get((start, end))
                if cell is None:
                    cell = cells[(start, end)] = _Cell()
                dropped += self._insert_candidates(cell, candidates, budget)
        return dropped

    @staticmethod
    def _candidates(start: int, end: int, cells) -> list:
        """Every rule-compatible (left item, right item) pairing, tagged
        with its reference-order position ``(mid, l_idx, r_idx, rule)``."""
        candidates = []
        append = candidates.append
        for mid in range(start + 1, end):
            left = cells.get((start, mid))
            right = cells.get((mid, end))
            if left is None or right is None:
                continue
            empty: list = []
            for l_idx, litem, arg_cid in left.fwd:
                for r_idx, ritem in right.by_cat.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_FORWARD_APPLICATION,
                            litem, ritem))
                for r_idx, ritem in right.fwd_by_result.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_FORWARD_COMPOSITION,
                            litem, ritem))
            for r_idx, ritem, arg_cid in right.bwd:
                for l_idx, litem in left.by_cat.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_BACKWARD_APPLICATION,
                            litem, ritem))
                for l_idx, litem in left.bwd_by_result.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_BACKWARD_COMPOSITION,
                            litem, ritem))
            if left.conj:
                for l_idx, litem in left.conj:
                    for r_idx, ritem in right.non_func:
                        append((mid, l_idx, r_idx, RULE_COORDINATION,
                                litem, ritem))
        return candidates

    def _insert_candidates(self, cell: _Cell, candidates, budget: int) -> int:
        dropped = 0
        by_key = cell.by_key
        by_key_get = by_key.get
        items = cell.items
        memo = _PRODUCTION_MEMO
        memo_get = memo.get
        rule_names = RULE_NAMES
        for candidate in candidates:
            rule = candidate[3]
            litem = candidate[4]
            ritem = candidate[5]
            pkey = (rule, litem.catid, litem.sid, ritem.catid, ritem.sid)
            outcomes = memo_get(pkey)
            if outcomes is None:
                productions = _produce(rule, litem, ritem)
                outcomes = memo[pkey] = tuple(
                    (category, category_id(category), triple[1], triple[2])
                    for category, triple in productions
                )
            else:
                # Fast path: the structural outcomes are known; the term
                # is only built (lazily, below) for a first-time
                # insertion.  Outcomes align positionally with
                # ``_produce``'s production list.
                productions = None
            rule_name = rule_names[rule]
            for position, outcome in enumerate(outcomes):
                existing = by_key_get((outcome[1], outcome[2]))
                if existing is not None:
                    # Packing: a new derivation of a known reading.
                    existing.derivations.append((rule_name, litem, ritem))
                    continue
                if len(items) >= budget:
                    dropped += 1
                    continue
                if productions is None:
                    productions = _produce(rule, litem, ritem)
                category, triple = productions[position]
                packed = PackedItem(category=category, sem=triple[0],
                                    ntriple=triple)
                packed.derivations.append((rule_name, litem, ritem))
                cell.insert(packed)
        return dropped


def _produce(rule: int, litem: PackedItem,
             ritem: PackedItem) -> tuple[tuple[Category, Triple], ...]:
    """The produced (category, triple) pairs for one candidate.

    The category indexes guarantee the rule's precondition holds, so
    production is unconditional; results are built directly in normalized
    triple form, mirroring :mod:`repro.ccg.combinators` rule-for-rule."""
    lcat, rcat = litem.category, ritem.category
    if rule == RULE_FORWARD_APPLICATION:
        return ((lcat.result, apply_triple(litem.ntriple, ritem.ntriple)),)
    if rule == RULE_BACKWARD_APPLICATION:
        return ((rcat.result, apply_triple(ritem.ntriple, litem.ntriple)),)
    if rule == RULE_FORWARD_COMPOSITION:
        # λz. l (r z)
        inner = apply_triple(ritem.ntriple, neutral("z"))
        return ((forward(lcat.result, rcat.arg),
                 lam_wrap("z", apply_triple(litem.ntriple, inner))),)
    if rule == RULE_BACKWARD_COMPOSITION:
        # λz. r (l z)
        inner = apply_triple(litem.ntriple, neutral("z"))
        return ((backward(rcat.result, lcat.arg),
                 lam_wrap("z", apply_triple(ritem.ntriple, inner))),)
    # Coordination (grouped, then — for NP conjuncts — distributed),
    # mirroring repro.ccg.combinators.coordination term-for-term.
    lsem = litem.sem
    conj_pred = "Or" if type(lsem) is Const and lsem.value == "or" else "And"
    var_a = neutral("a")
    grouped = lam_wrap(
        "a",
        make_call_triple(conj_pred, (var_a, ritem.ntriple), None, frozenset()),
    )
    productions = [(backward(rcat, rcat), grouped)]
    if rcat == NP:
        var_p = neutral("p")
        distributed = lam_wrap(
            "a",
            lam_wrap(
                "p",
                make_call_triple(
                    conj_pred,
                    (apply_triple(var_p, var_a), apply_triple(var_p, ritem.ntriple)),
                    None,
                    frozenset({"distributed"}),
                ),
            ),
        )
        productions.append((_DISTRIBUTED_CATEGORY, distributed))
    return tuple(productions)


_DISTRIBUTED_CATEGORY = backward(forward(S, backward(S, NP)), NP)

#: Sort key reproducing the reference backend's insertion sequence.
_CANDIDATE_ORDER = itemgetter(0, 1, 2, 3)
