"""The optimized chart backend: category-indexed cells over a packed forest.

Same grammar, same combinators, same cells — different enumeration.  Where
the reference backend tries every rule on every cell×cell item pair, this
backend keeps per-cell indexes (items by exact category, forward/backward
functions by result category, conjunctions, saturated constituents) and
only visits pairs whose categories can actually unify under some rule:

* forward application ``X/Y Y``: each forward function looks up exactly
  the right-cell items of category ``Y``;
* forward composition ``X/Y Y/Z``: ... the right-cell forward functions
  whose *result* is ``Y``;
* backward application/composition mirror with the left cell;
* coordination: the left cell's CONJ items × the right cell's saturated
  constituents.

Chart exploration is **agenda-driven**: instead of sweeping every
``(span, mid)`` slot of the CKY triangle — most of which are provably
empty the moment the lexical layer is down — the combination loop keeps a
best-first agenda of *target* spans, fed by a cell-adjacency index.  A
target is scheduled exactly when some adjacent pair of non-empty cells
could produce into it, and the agenda priority ``(span width, start)`` is
precisely the reference backend's sweep order, so popping the agenda dry
visits the same cells in the same order while never touching the empty
regions of the chart.  A cell is popped at most once (the scheduled set
dedups), every pop either seeds the cell from the span memo or combines
it, and the ``PruneBudget`` is charged per pop — the drops a pop records
are final because nothing revisits its cell.

On top of the agenda sits the cross-sentence **span-signature memo**:
the finished contents of a combination cell are a pure function of the
lexicon, the prune budget, the span's start offset, and the exact
``(text, kind)`` token sequence it covers — nothing outside the span ever
reaches into it.  Once any sentence has combined a span, every later
sentence in the corpus that repeats those tokens at that offset (RFC
prose repeats its phrasing heavily — "send an ICMP message", shared field
clauses, boilerplate sentence prefixes) seeds the finished cell with the
*same* packed items in one dict probe: no candidate enumeration, no
production lookups, no new term objects.  Reuse is keyed by the lexicon
fingerprint and the budget, so an edited grammar or a different pruning
contract can never be served another configuration's cells, and the
adopted items carry the exact provenance (spans, triggers) a fresh
derivation would have produced — reuse is invisible in the output, which
the shuffled-corpus property test locks.

Candidate productions are tagged ``(mid, left_index, right_index, rule)``
and sorted before insertion, which reproduces the reference backend's
insertion sequence exactly — so semantic dedup keeps the *same*
representative (same provenance spans and triggers), cells truncate at the
same point under the same budget, and the enumerated logical forms match
the reference list element-for-element.  Parity is therefore structural;
the test suite and the benchmark gate verify it corpus-wide.

Everything the loop does is counted on the process-global
:data:`~repro.parsing.profile.PROFILE` (agenda pops, seeded vs combined
cells, memo hit rates, budget drops) — surfaced through
``SageService.parse_diagnostics``, ``python -m repro parse --profile``,
and the pipeline smoke benchmark.

Semantics flow as the fused normalizer's ``(sem, sid, grounded)`` triples
(:mod:`.values`): combining two items substitutes into already-normal
forms, building the result term, its dedup id, and its groundedness in one
pass.  On top of that sits a process-global *production memo*: the
structural outcome of (rule, operand categories, operand structures) is
deterministic, so once any sentence anywhere has derived a combination
shape, every later duplicate derivation — the majority, CCG's spurious
ambiguity being what it is — resolves to "pack one more backpointer" with
a single dict probe and no term construction at all.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from operator import itemgetter

from ..ccg.categories import (
    CONJ,
    FORWARD,
    NP,
    S,
    Category,
    Func,
    backward,
    category_id,
    forward,
)
from ..ccg.chart import (
    MAX_CELL_ITEMS,
    CCGChartParser,
    ParseResult,
    lexical_span_items,
    strip_terminal_punct,
)
from ..ccg.combinators import (
    RULE_BACKWARD_APPLICATION,
    RULE_BACKWARD_COMPOSITION,
    RULE_COORDINATION,
    RULE_FORWARD_APPLICATION,
    RULE_FORWARD_COMPOSITION,
    RULE_NAMES,
)
from ..ccg.lexicon import Lexicon
from ..ccg.semantics import Const
from ..nlp.tokenizer import Token
from .forest import (
    LEXICAL_RULE,
    PackedItem,
    ParseForest,
    PruneBudget,
    register_producer,
)
from .profile import PROFILE
from .values import (
    Triple,
    apply_triple,
    lam_wrap,
    make_call_triple,
    neutral,
    normalize,
    normalize_batch,
    reset_apply_memo,
    reset_derived_memos,
    sid_apply,
    sid_grounded,
    sid_of_key,
)

#: (rule, left category id, left sid, right category id, right sid) →
#: tuple of (category, category id, sid, grounded) per production.
#: Structure-only and therefore process-global: provenance does not
#: participate, so a hit is valid for any derivation with
#: structurally-equal operands.
_PRODUCTION_MEMO: dict[tuple, tuple] = {}

#: Lexical span cache: the chart items (category, stamped sem, normalized
#: triple) a given surface span yields are a pure function of the lexicon
#: content, the span's tokens, and the start position, so they are shared
#: process-wide.  Sharing the *sem objects* across sentences is what
#: feeds the apply memo in :mod:`.values` — identical phrases at
#: identical offsets re-derive combination results by dict probe.
#:
#: The cache is generational: one inner dict per lexicon fingerprint (an
#: edited or different lexicon can never be served another grammar's
#: items), bounded to the most recent :data:`_LEXICAL_GENERATIONS`
#: fingerprints so a long-lived service editing its lexicon does not
#: accumulate orphaned generations forever.  Inner keys: single tokens by
#: (start, text, kind); multiword spans by (start, lowered words).
#: Misses (spans yielding no items) cache as empty tuples.
_LEXICAL_CACHE: dict[str, dict[tuple, tuple]] = {}
_LEXICAL_GENERATIONS = 4


def _lexical_generation(fingerprint: str) -> dict[tuple, tuple]:
    generation = _LEXICAL_CACHE.get(fingerprint)
    if generation is None:
        evicted = False
        while len(_LEXICAL_CACHE) >= _LEXICAL_GENERATIONS:
            _LEXICAL_CACHE.pop(next(iter(_LEXICAL_CACHE)))
            evicted = True
        if evicted:
            # The apply memo pins sem objects from the dropped
            # generation's items; those entries can never hit again, so
            # release them wholesale (live entries rebuild on demand).
            reset_apply_memo()
        generation = _LEXICAL_CACHE.setdefault(fingerprint, {})
    return generation


#: Cross-sentence span-signature memo (see module docstring).  Outer key:
#: (lexicon fingerprint, budget max_cell_items) — a cell's contents and
#: its counted drops are pure functions of those two plus the inner key,
#: (start offset, ((text, kind), ...) for the span's tokens).  Values are
#: (finished _Cell or None, drops charged when the cell was combined); a
#: popped cell is final (nothing revisits it), so the *cell object* with
#: its indexes is adopted wholesale on a hit — no re-insertion, no index
#: rebuild.  Empty spans memoize as (None, 0) so repeated dead phrasing
#: skips candidate enumeration too.  Generational like the lexical
#: cache, and bounded by the same count, so a long-lived service cycling
#: lexicons releases old span graphs.
_SPAN_MEMO: dict[tuple[str, int], dict[tuple, tuple]] = {}
_SPAN_GENERATIONS = 4

_EMPTY_SPAN = (None, 0)


def _span_generation(fingerprint: str, max_cell_items: int) -> dict[tuple, tuple]:
    key = (fingerprint, max_cell_items)
    generation = _SPAN_MEMO.get(key)
    if generation is None:
        while len(_SPAN_MEMO) >= _SPAN_GENERATIONS:
            _SPAN_MEMO.pop(next(iter(_SPAN_MEMO)))
        generation = _SPAN_MEMO.setdefault(key, {})
    return generation


def reset_span_memo() -> None:
    """Drop every memoized span (tests / benchmark cold-start bracketing)."""
    _SPAN_MEMO.clear()


def reset_parser_state() -> None:
    """Return the indexed backend to a process-cold state.

    Drops every process-global memo a parse warms as a side effect — the
    span-signature memo, the lexical span cache, the structural
    production memo, and the derived term/sid memos in :mod:`.values` —
    so the next sweep re-pays full chart construction and term
    production.  The value intern tables survive (see
    :func:`repro.parsing.values.reset_derived_memos`).  This exists for
    benchmark cold-start bracketing: best-of-N cold rounds need each
    round to actually be cold.
    """
    _SPAN_MEMO.clear()
    _LEXICAL_CACHE.clear()
    _PRODUCTION_MEMO.clear()
    reset_derived_memos()


class _Cell:
    """One chart cell plus the indexes the combination loop consults."""

    __slots__ = ("items", "by_key", "by_cat", "fwd", "bwd",
                 "fwd_by_result", "bwd_by_result", "conj", "non_func")

    def __init__(self) -> None:
        self.items: list[PackedItem] = []
        #: (category id, structural id) → item, for insertion-time dedup.
        self.by_key: dict[tuple[int, int], PackedItem] = {}
        self.by_cat: dict[int, list] = {}
        #: (index, item, argument category id) for function categories.
        self.fwd: list = []
        self.bwd: list = []
        self.fwd_by_result: dict[int, list] = {}
        self.bwd_by_result: dict[int, list] = {}
        self.conj: list = []
        self.non_func: list = []

    def insert(self, item: PackedItem) -> None:
        index = len(self.items)
        self.items.append(item)
        key = (item.catid, item.sid)
        if key not in self.by_key:
            self.by_key[key] = item
        category = item.category
        self.by_cat.setdefault(item.catid, []).append((index, item))
        # The routing decision (function? which slash? which arg/result
        # ids? conjunction?) is a pure function of the category — cache
        # it on the category object so repeat inserts are one dict probe.
        d = category.__dict__
        plan = d.get("_ixplan")
        if plan is None:
            if isinstance(category, Func):
                plan = (category_id(category.arg),
                        category_id(category.result),
                        category.slash == FORWARD)
            else:
                plan = (None, None, category == CONJ)
            d["_ixplan"] = plan
        arg_cid = plan[0]
        if arg_cid is not None:
            # Function entries carry their argument-category id so the
            # candidate scan probes the opposite cell with plain ints.
            entry = (index, item, arg_cid)
            if plan[2]:
                self.fwd.append(entry)
                self.fwd_by_result.setdefault(plan[1], []).append((index, item))
            else:
                self.bwd.append(entry)
                self.bwd_by_result.setdefault(plan[1], []).append((index, item))
        else:
            entry = (index, item)
            self.non_func.append(entry)
            if plan[2]:
                self.conj.append(entry)


#: Shared sentinel for cached-empty single-token spans (never mutated,
#: never entered into a chart).
_EMPTY_CELL = _Cell()


class IndexedChartParser(CCGChartParser):
    """The ``indexed`` parser backend (see module docstring).

    Subclasses :class:`~repro.ccg.chart.CCGChartParser` for interface
    compatibility (``lexicon``, ``max_cell_items``, ``parse``); the chart
    construction is entirely its own.
    """

    name = "indexed"

    def __init__(self, lexicon: Lexicon, max_cell_items: int = MAX_CELL_ITEMS,
                 budget: PruneBudget | None = None,
                 reuse_spans: bool = True) -> None:
        if budget is None:
            budget = PruneBudget(max_cell_items=max_cell_items)
        super().__init__(lexicon, budget.max_cell_items)
        self.budget = budget
        #: Whether combination cells may be seeded from (and stored into)
        #: the cross-sentence span-signature memo.  Reuse never changes
        #: outputs (the property tests lock this); disabling it exists for
        #: control runs and A/B measurement.
        self.reuse_spans = reuse_spans

    # -- public API ------------------------------------------------------------
    def parse(self, tokens: list[Token]) -> ParseResult:
        return self.parse_forest(tokens).to_result()

    def parse_forest(self, tokens: list[Token]) -> ParseForest:
        """Parse into a :class:`~repro.parsing.forest.ParseForest`."""
        tokens = strip_terminal_punct(tokens)
        length = len(tokens)
        if not tokens:
            return ParseForest(0, {}, [], 0, self.budget, 0, backend=self.name)
        PROFILE.parses += 1
        cells: dict[tuple[int, int], _Cell] = {}
        covered = [False] * length
        # Chart construction is allocation-dense and most of what it
        # builds is either pinned in the process-global memos or garbage
        # by the end of the sentence; letting the cyclic collector run
        # mid-parse means re-traversing the ever-growing memo graph on
        # every generation sweep, which dominates cold-parse time.  Pause
        # it for the (milliseconds-long) construction window.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            unknown = self._fill_lexical(tokens, cells, covered)
            # The reference chart registers every width-1 cell it fills
            # plus every width>=2 span it sweeps; the agenda never touches
            # empty spans, so reproduce that count arithmetically.
            cells_filled = (length * (length - 1)) // 2 + sum(
                1 for (start, end) in cells if end - start == 1
            )
            dropped = self._combine_spans(tokens, cells)
        finally:
            if gc_was_enabled:
                gc.enable()
        return ParseForest(
            length=length,
            cells={span: cells[span].items for span in cells},
            unknown_words=unknown,
            dropped_items=dropped,
            budget=self.budget,
            cells_filled=cells_filled,
            backend=self.name,
        )

    # -- lexical spans ---------------------------------------------------------
    def _fill_lexical(self, tokens: list[Token], cells,
                      covered: list[bool]) -> list[str]:
        length = len(tokens)
        words_lower = [token.lower for token in tokens]
        matches_by_start = [
            dict(self.lexicon.iter_matches(words_lower, start))
            for start in range(length)
        ]
        # Same cell-filling order as the reference chart: span length
        # ascending, start ascending.
        lexical_cache = _lexical_generation(self.lexicon.fingerprint())
        cache_hits = 0
        cache_misses = 0
        # Width-1 cells are never combination targets (targets have
        # width >= 2), so a finished single-token _Cell is immutable and
        # can be *shared* across every sentence that repeats the token at
        # the offset: one dict probe adopts the whole indexed cell, items
        # and all.  Multiword lexical cells can receive combination
        # insertions, so those still cache (category, sem, triple) tuples
        # and rebuild fresh PackedItems per sentence.
        for start in range(length):
            token = tokens[start]
            cache_key = (start, token.text, token.kind)
            shared = lexical_cache.get(cache_key)
            if shared is None:
                cache_misses += 1
                items = lexical_span_items(
                    self.lexicon, tokens, start, start + 1,
                    entries=matches_by_start[start].get(start + 1, ()),
                )
                # The stored sem is the verbatim (unreduced, stamped)
                # lexical semantics — exactly what the reference cell
                # carries — alongside the normalized triple that drives
                # combination and dedup.  The span's item semantics share
                # subterms (type-raised entries wrap the same stamped
                # bodies), so normalize them as one batch over the shared
                # DAG.
                triples = normalize_batch([item.sem for item in items])
                shared = _Cell() if items else _EMPTY_CELL
                for item, triple in zip(items, triples):
                    packed = PackedItem(category=item.category,
                                        sem=item.sem, ntriple=triple)
                    packed.derivations.append((LEXICAL_RULE, None, None))
                    shared.insert(packed)
                lexical_cache[cache_key] = shared
            else:
                cache_hits += 1
            if shared.items:
                covered[start] = True
                cells[(start, start + 1)] = shared
        for span_len in range(2, min(self.lexicon.max_phrase_words, length) + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                entries = matches_by_start[start].get(end, ())
                if not entries:
                    continue  # multiword spans only exist via the trie
                cache_key = (start, tuple(words_lower[start:end]))
                cached = lexical_cache.get(cache_key)
                if cached is None:
                    cache_misses += 1
                    items = lexical_span_items(
                        self.lexicon, tokens, start, end, entries=entries,
                    )
                    triples = normalize_batch([item.sem for item in items])
                    cached = tuple(
                        (item.category, item.sem, triple)
                        for item, triple in zip(items, triples)
                    )
                    lexical_cache[cache_key] = cached
                else:
                    cache_hits += 1
                if not cached:
                    continue
                for position in range(start, end):
                    covered[position] = True
                cell = cells.get((start, end))
                if cell is None:
                    cell = cells[(start, end)] = _Cell()
                for category, sem, ntriple in cached:
                    packed = PackedItem(category=category, sem=sem,
                                        ntriple=ntriple)
                    packed.derivations.append((LEXICAL_RULE, None, None))
                    cell.insert(packed)
        PROFILE.lexical_cache_hits += cache_hits
        PROFILE.lexical_cache_misses += cache_misses
        return [
            tokens[position].text
            for position in range(length)
            if not covered[position]
        ]

    # -- combination -----------------------------------------------------------
    def _combine_spans(self, tokens: list[Token], cells) -> int:
        """Agenda-driven combination (see module docstring).

        Invariants the byte parity rests on:

        * the agenda holds *target* spans keyed ``(width, start, end)``;
          heap order is therefore width ascending then start ascending —
          exactly the reference sweep order;
        * a target is scheduled the moment its *second* contributing
          sub-cell becomes non-empty (adjacency lists ``left_ends`` /
          ``right_starts`` make that O(adjacent cells)), and the
          ``scheduled`` set guarantees at most one pop per span;
        * every schedule event originates from a cell strictly narrower
          than the target, so by the time the first width-w target pops,
          every width-w target that will ever exist is already queued —
          within a width class the heap yields starts in ascending order,
          and equal-width cells can never feed each other;
        * each pop charges the ``PruneBudget`` exactly once and its drops
          are final: nothing ever revisits a popped cell.
        """
        length = len(tokens)
        if length < 2:
            return 0
        budget = self.budget.max_cell_items
        span_memo = (
            _span_generation(self.lexicon.fingerprint(), budget)
            if self.reuse_spans else None
        )
        token_keys = ([(token.text, token.kind) for token in tokens]
                      if span_memo is not None else None)

        left_ends: list[list[int]] = [[] for _ in range(length + 1)]
        right_starts: list[list[int]] = [[] for _ in range(length + 1)]
        heap: list[tuple[int, int, int]] = []
        scheduled: set[tuple[int, int]] = set()
        scheduled_add = scheduled.add

        def note_nonempty(i: int, j: int) -> None:
            # Cell (i, j) just became non-empty: schedule every span a
            # pairing with an adjacent non-empty cell could produce into.
            for k in left_ends[j]:
                target = (i, k)
                if target not in scheduled:
                    scheduled_add(target)
                    heappush(heap, (k - i, i, k))
            for h in right_starts[i]:
                target = (h, j)
                if target not in scheduled:
                    scheduled_add(target)
                    heappush(heap, (j - h, h, j))
            left_ends[i].append(j)
            right_starts[j].append(i)

        # Seed adjacency from the lexical layer; _fill_lexical inserts in
        # sweep order (width ascending, start ascending), so plain dict
        # order is already sorted.
        for span in list(cells):
            note_nonempty(*span)

        dropped_total = 0
        pops = 0
        seeded = 0
        visited = 0
        memo_hits = 0
        memo_misses = 0
        items_reused = 0
        while heap:
            _width, start, end = heappop(heap)
            pops += 1
            span_key = None
            if span_memo is not None:
                span_key = (start, tuple(token_keys[start:end]))
                hit = span_memo.get(span_key)
                if hit is not None:
                    memo_hits += 1
                    stored_cell, cell_dropped = hit
                    dropped_total += cell_dropped
                    if stored_cell is not None:
                        seeded += 1
                        items_reused += len(stored_cell.items)
                        # Adopt the finished cell wholesale — object,
                        # items, indexes.  If a lexical cell already sits
                        # at this span, the stored cell is a superset
                        # built from the *same* shared lexical objects,
                        # so replacement is value- and
                        # provenance-identical.
                        was_empty = (start, end) not in cells
                        cells[(start, end)] = stored_cell
                        if was_empty:
                            note_nonempty(start, end)
                    continue
                memo_misses += 1
            visited += 1
            # Valid split points: mids where both (start, mid) and
            # (mid, end) are non-empty.  left_ends[start] holds exactly
            # the non-empty spans starting at start.
            mids = [mid for mid in left_ends[start]
                    if mid < end and (mid, end) in cells]
            candidates = None
            if mids:
                mids.sort()
                candidates = self._candidates(mids, start, end, cells)
            if not candidates:
                if span_memo is not None:
                    span_memo[span_key] = _EMPTY_SPAN
                continue
            candidates.sort(key=_CANDIDATE_ORDER)
            cell = cells.get((start, end))
            was_empty = cell is None
            if was_empty:
                cell = cells[(start, end)] = _Cell()
            cell_dropped = self._insert_candidates(cell, candidates, budget)
            dropped_total += cell_dropped
            if span_memo is not None:
                # The popped cell is final: store the object itself.
                span_memo[span_key] = (cell if cell.items else None,
                                       cell_dropped)
            if was_empty and cell.items:
                note_nonempty(start, end)
        PROFILE.agenda_pops += pops
        PROFILE.agenda_scheduled += len(scheduled)
        PROFILE.cells_visited += visited
        PROFILE.cells_seeded += seeded
        PROFILE.span_memo_hits += memo_hits
        PROFILE.span_memo_misses += memo_misses
        PROFILE.items_reused += items_reused
        PROFILE.budget_drops += dropped_total
        return dropped_total

    @staticmethod
    def _candidates(mids: list[int], start: int, end: int, cells) -> list:
        """Every rule-compatible (left item, right item) pairing over the
        given split points, tagged with its reference-order position
        ``(mid, l_idx, r_idx, rule)``."""
        candidates = []
        append = candidates.append
        for mid in mids:
            left = cells[(start, mid)]
            right = cells[(mid, end)]
            empty: list = []
            for l_idx, litem, arg_cid in left.fwd:
                for r_idx, ritem in right.by_cat.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_FORWARD_APPLICATION,
                            litem, ritem))
                for r_idx, ritem in right.fwd_by_result.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_FORWARD_COMPOSITION,
                            litem, ritem))
            for r_idx, ritem, arg_cid in right.bwd:
                for l_idx, litem in left.by_cat.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_BACKWARD_APPLICATION,
                            litem, ritem))
                for l_idx, litem in left.bwd_by_result.get(arg_cid, empty):
                    append((mid, l_idx, r_idx, RULE_BACKWARD_COMPOSITION,
                            litem, ritem))
            if left.conj:
                for l_idx, litem in left.conj:
                    for r_idx, ritem in right.non_func:
                        append((mid, l_idx, r_idx, RULE_COORDINATION,
                                litem, ritem))
        return candidates

    def _insert_candidates(self, cell: _Cell, candidates, budget: int) -> int:
        dropped = 0
        by_key = cell.by_key
        by_key_get = by_key.get
        items = cell.items
        memo = _PRODUCTION_MEMO
        memo_get = memo.get
        rule_names = RULE_NAMES
        memo_hits = 0
        memo_misses = 0
        for _mid, _l_idx, _r_idx, rule, litem, ritem in candidates:
            pkey = (rule, litem.catid, litem.sid, ritem.catid, ritem.sid)
            outcomes = memo_get(pkey)
            if outcomes is None:
                # First sighting of this structural combination: learn
                # its (category, sid, grounded) outcomes over interned
                # ids only — no semantics are built unless an outcome
                # actually enters the cell (below).  The packed/pruned
                # majority never pays term construction.
                memo_misses += 1
                outcomes = memo[pkey] = _structural_outcomes(
                    rule, litem, ritem)
            else:
                memo_hits += 1
            # No term is built here at all: insertion stores a deferred
            # item carrying its founding candidate, and the term
            # materializes only if enumeration ever demands it.  Outcome
            # positions align with ``_produce``'s production list.
            rule_name = rule_names[rule]
            for position, outcome in enumerate(outcomes):
                existing = by_key_get((outcome[1], outcome[2]))
                if existing is not None:
                    # Packing: a new derivation of a known reading.
                    existing.derivations.append((rule_name, litem, ritem))
                    continue
                if len(items) >= budget:
                    dropped += 1
                    continue
                packed = PackedItem.deferred(
                    outcome[0], outcome[1], outcome[2], outcome[3],
                    rule, litem, ritem, position)
                packed.derivations.append((rule_name, litem, ritem))
                cell.insert(packed)
        PROFILE.production_memo_hits += memo_hits
        PROFILE.production_memo_misses += memo_misses
        return dropped


def _structural_outcomes(rule: int, litem: PackedItem,
                         ritem: PackedItem) -> tuple[tuple, ...]:
    """The ``(category, catid, sid, grounded)`` outcome rows for one
    candidate, computed entirely over interned structure ids.

    Mirrors :func:`_produce` production-for-production — same categories,
    and sids/groundedness identical to the triples ``_produce`` would
    build (``sid_apply`` is ``apply_triple``'s structural shadow).  The
    corpus-wide parity gate locks that equivalence."""
    lcat, rcat = litem.category, ritem.category
    if rule == RULE_FORWARD_APPLICATION:
        rows = ((lcat.result, sid_apply(litem.sid, ritem.sid)),)
    elif rule == RULE_BACKWARD_APPLICATION:
        rows = ((rcat.result, sid_apply(ritem.sid, litem.sid)),)
    elif rule == RULE_FORWARD_COMPOSITION:
        inner = sid_apply(ritem.sid, _VAR_Z_SID)
        rows = ((forward(lcat.result, rcat.arg),
                 sid_of_key(("l", "z", sid_apply(litem.sid, inner)))),)
    elif rule == RULE_BACKWARD_COMPOSITION:
        inner = sid_apply(litem.sid, _VAR_Z_SID)
        rows = ((backward(rcat.result, lcat.arg),
                 sid_of_key(("l", "z", sid_apply(ritem.sid, inner)))),)
    else:
        lsem = litem.sem
        if lsem is None:
            lsem = litem.triple()[0]
        conj_pred = "Or" if type(lsem) is Const and lsem.value == "or" else "And"
        grouped = sid_of_key(
            ("l", "a", sid_of_key(("@", conj_pred, (_VAR_A_SID, ritem.sid))))
        )
        rows = [(backward(rcat, rcat), grouped)]
        if rcat == NP:
            distributed = sid_of_key(("l", "a", sid_of_key(("l", "p", sid_of_key(
                ("@", conj_pred,
                 (sid_of_key(("a", _VAR_P_SID, _VAR_A_SID)),
                  sid_of_key(("a", _VAR_P_SID, ritem.sid)))),
            )))))
            rows.append((_DISTRIBUTED_CATEGORY, distributed))
    built = []
    for category, sid in rows:
        cid = category.__dict__.get("_cid")
        if cid is None:
            cid = category_id(category)
        built.append((category, cid, sid, sid_grounded(sid)))
    return tuple(built)


_VAR_Z_SID = neutral("z")[1]
_VAR_A_SID = neutral("a")[1]
_VAR_P_SID = neutral("p")[1]


def _produce(rule: int, litem: PackedItem,
             ritem: PackedItem) -> tuple[tuple[Category, Triple], ...]:
    """The produced (category, triple) pairs for one candidate.

    The category indexes guarantee the rule's precondition holds, so
    production is unconditional; results are built directly in normalized
    triple form, mirroring :mod:`repro.ccg.combinators` rule-for-rule.

    Children may themselves be deferred — :meth:`PackedItem.triple` forces
    them first, so a forced root materializes exactly its backpointer cone
    and nothing else."""
    lcat, rcat = litem.category, ritem.category
    ltriple = litem.ntriple or litem.triple()
    rtriple = ritem.ntriple or ritem.triple()
    if rule == RULE_FORWARD_APPLICATION:
        return ((lcat.result, apply_triple(ltriple, rtriple)),)
    if rule == RULE_BACKWARD_APPLICATION:
        return ((rcat.result, apply_triple(rtriple, ltriple)),)
    if rule == RULE_FORWARD_COMPOSITION:
        # λz. l (r z)
        inner = apply_triple(rtriple, neutral("z"))
        return ((forward(lcat.result, rcat.arg),
                 lam_wrap("z", apply_triple(ltriple, inner))),)
    if rule == RULE_BACKWARD_COMPOSITION:
        # λz. r (l z)
        inner = apply_triple(ltriple, neutral("z"))
        return ((backward(rcat.result, lcat.arg),
                 lam_wrap("z", apply_triple(rtriple, inner))),)
    # Coordination (grouped, then — for NP conjuncts — distributed),
    # mirroring repro.ccg.combinators.coordination term-for-term.
    lsem = litem.sem
    conj_pred = "Or" if type(lsem) is Const and lsem.value == "or" else "And"
    var_a = neutral("a")
    grouped = lam_wrap(
        "a",
        make_call_triple(conj_pred, (var_a, rtriple), None, frozenset()),
    )
    productions = [(backward(rcat, rcat), grouped)]
    if rcat == NP:
        var_p = neutral("p")
        distributed = lam_wrap(
            "a",
            lam_wrap(
                "p",
                make_call_triple(
                    conj_pred,
                    (apply_triple(var_p, var_a), apply_triple(var_p, rtriple)),
                    None,
                    frozenset({"distributed"}),
                ),
            ),
        )
        productions.append((_DISTRIBUTED_CATEGORY, distributed))
    return tuple(productions)


_DISTRIBUTED_CATEGORY = backward(forward(S, backward(S, NP)), NP)

# Deferred items force their terms through this backend's production
# function (forest.py cannot import it without a cycle).
register_producer(_produce)

#: Sort key reproducing the reference backend's insertion sequence.
_CANDIDATE_ORDER = itemgetter(0, 1, 2, 3)
