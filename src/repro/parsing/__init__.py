"""repro.parsing — the pluggable parsing subsystem.

The paper's front end (§4.1, CCG parsing of RFC sentences into logical
forms) as a first-class subsystem: a :class:`ParserBackend` protocol with
two registered implementations — the ``reference`` CKY chart and the
``indexed`` packed-forest parser — whose corpus-wide parity is locked in
tests and gated in CI.  See DESIGN.md §8, and §10 for the agenda-driven
hot path, the cross-sentence span memo, and the :mod:`.profile` counters.
"""

from .backend import (
    DEFAULT_PARSER_BACKEND,
    REFERENCE_PARSER_BACKEND,
    ParserBackend,
    UnknownParserBackendError,
    backend_id,
    create_parser,
    parser_backend_names,
    register_parser_backend,
)
from .forest import PackedItem, ParseForest, PruneBudget
from .indexed import IndexedChartParser, reset_parser_state, reset_span_memo
from .profile import PROFILE, profile_delta, profile_snapshot, reset_profile
from .values import normalize_batch

__all__ = [
    "DEFAULT_PARSER_BACKEND",
    "REFERENCE_PARSER_BACKEND",
    "ParserBackend",
    "UnknownParserBackendError",
    "backend_id",
    "create_parser",
    "parser_backend_names",
    "register_parser_backend",
    "PackedItem",
    "ParseForest",
    "PruneBudget",
    "IndexedChartParser",
    "reset_parser_state",
    "reset_span_memo",
    "PROFILE",
    "profile_delta",
    "profile_snapshot",
    "reset_profile",
    "normalize_batch",
]
