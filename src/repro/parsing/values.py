"""A fused, memoizing normalizer for the chart's lambda semantics.

The reference chart normalizes every produced item with
:func:`repro.ccg.semantics.reduce_term` — repeated single-step beta
reduction, each step a full traversal — and then runs a second full
traversal for the dedup :func:`~repro.ccg.semantics.signature`.  On the
cold-parse path that multi-pass work dominates.

Here normalization, structural identity, and groundedness are computed in
**one pass**.  Everything flows as triples ``(sem, sid, grounded)``:

* ``sem`` — the β-normal term (ordinary :class:`~repro.ccg.semantics.Sem`
  nodes, provenance intact);
* ``sid`` — a hash-consed intern id: two terms get the same ``sid`` iff
  they have the same provenance-free structure, i.e. exactly the
  equivalence :func:`~repro.ccg.semantics.signature` induces, but a dict
  probe on small tuples instead of string assembly;
* ``grounded`` — :func:`~repro.ccg.semantics.is_grounded`, composed
  bottom-up.

:func:`normalize` evaluates a term under an environment of triples.
Because every term entering the system is already β-normal (lexical
semantics are hand-written normal forms; produced items are stored
normalized), redexes only appear when application substitutes a lambda
into function position — so the walk touches the substitution spine and
shortcuts everything else:

* subtrees with no free variable bound by the environment are returned
  as-is, with their triple cached *on the node* (``_norm`` in the
  instance dict), so repeated applications of the same function re-walk
  only what actually changes;
* free-variable sets are likewise cached per node (``_fv``);
* leaf sids cache on the ``Const``/``Var`` instances.

The intern table is process-global and content-addressed: equal keys map
to equal ids across sentences and parses, which makes sids comparable
everywhere and lets the formulaic structure of RFC prose intern once.  It
grows with the number of distinct logical-form shapes ever parsed — the
same growth discipline as the registry's parse cache.

Provenance survives untouched: ``Const`` spans ride along by object
identity and ``Call`` trigger/flags are copied field-for-field, so the
winnow checks see the same spans and triggers the reference backend
produces.  Binder names are kept verbatim (chart semantics are closed
terms, so reification under a binder never captures anything); β-normal
forms are unique up to those names (Church–Rosser), which is why this
normalizer and ``reduce_term`` agree structure-for-structure on every
grounded logical form — the property the backend-parity suite locks
corpus-wide.
"""

from __future__ import annotations

import itertools

from ..ccg.semantics import App, Call, Const, Lam, Sem, Var

__all__ = ["normalize", "apply_triple", "Triple", "sid_of_key", "neutral",
           "lam_wrap", "make_call_triple"]

#: (sem, sid, grounded)
Triple = tuple[Sem, int, bool]

# Frozen-dataclass construction goes through object.__setattr__ per field;
# on a path that builds hundreds of thousands of nodes per corpus that is
# pure overhead.  These constructors write the instance dict directly —
# field layout, equality, and hashing are unchanged.
_new = object.__new__


def _mk_call(pred, args, trigger, flags) -> Call:
    node = _new(Call)
    d = node.__dict__
    d["pred"] = pred
    d["args"] = args
    d["trigger"] = trigger
    d["flags"] = flags
    return node


def _mk_app(fn, arg) -> App:
    node = _new(App)
    d = node.__dict__
    d["fn"] = fn
    d["arg"] = arg
    return node


def _mk_lam(param, body) -> Lam:
    node = _new(Lam)
    d = node.__dict__
    d["param"] = param
    d["body"] = body
    return node


# -- hash consing --------------------------------------------------------------
#
# Id assignment is an atomic ``setdefault`` drawing from a counter, so
# racing threads can never hand one id to two different structures (at
# worst a counter value is burned and ids have gaps).

_INTERN: dict[tuple, int] = {}
_NEXT_SID = itertools.count()


def sid_of_key(key: tuple) -> int:
    """The intern id for a structural key (see module docstring)."""
    sid = _INTERN.get(key)
    if sid is None:
        sid = _INTERN.setdefault(key, next(_NEXT_SID))
    return sid


def _leaf_sid(leaf, tag: str, payload: str) -> int:
    d = leaf.__dict__
    sid = d.get("_sid")
    if sid is None:
        sid = d["_sid"] = sid_of_key((tag, payload))
    return sid


#: Shared neutral-variable triples for the binder names the rules use.
_NEUTRALS: dict[str, Triple] = {}


def neutral(name: str) -> Triple:
    """The neutral-variable triple for ``name`` (shared instance)."""
    triple = _NEUTRALS.get(name)
    if triple is None:
        var = Var(name)
        triple = _NEUTRALS[name] = (var, _leaf_sid(var, "v", name), False)
    return triple


# -- free variables ------------------------------------------------------------

def _free_vars(term: Sem) -> frozenset[str]:
    """Free-variable set, cached on the node (terms are immutable)."""
    d = term.__dict__
    fv = d.get("_fv")
    if fv is not None:
        return fv
    kind = type(term)
    if kind is Var:
        fv = frozenset((term.name,))
    elif kind is Const:
        fv = frozenset()
    elif kind is Lam:
        fv = _free_vars(term.body) - {term.param}
    elif kind is App:
        fv = _free_vars(term.fn) | _free_vars(term.arg)
    elif kind is Call:
        fv = frozenset()
        for arg in term.args:
            fv = fv | _free_vars(arg)
    else:
        raise TypeError(f"no free variables for {term!r}")
    d["_fv"] = fv
    return fv


# -- the normalizer ------------------------------------------------------------

def normalize(term: Sem, env: dict[str, Triple]) -> Triple:
    """Normalize ``term`` under ``env`` into a ``(sem, sid, grounded)``
    triple (see module docstring for the shortcut discipline)."""
    kind = type(term)
    if kind is Var:
        hit = env.get(term.name)
        if hit is not None:
            return hit
        return term, _leaf_sid(term, "v", term.name), False
    if kind is Const:
        return term, _leaf_sid(term, "c", term.value), True
    d = term.__dict__
    if env:
        fv = d.get("_fv")
        if fv is None:
            fv = _free_vars(term)
        for name in env:
            if name in fv:
                break
        else:
            env = _EMPTY_ENV  # nothing to substitute: closed w.r.t. env
    if not env:
        cached = d.get("_norm")
        if cached is not None:
            return cached
    if kind is Call:
        sems = []
        sids = []
        grounded = True
        changed = False
        for arg in term.args:
            sub = type(arg)
            if sub is Const:
                sems.append(arg)
                arg_dict = arg.__dict__
                sid = arg_dict.get("_sid")
                if sid is None:
                    sid = arg_dict["_sid"] = sid_of_key(("c", arg.value))
                sids.append(sid)
            elif sub is Var:
                hit = env.get(arg.name)
                if hit is None:
                    sems.append(arg)
                    arg_dict = arg.__dict__
                    sid = arg_dict.get("_sid")
                    if sid is None:
                        sid = arg_dict["_sid"] = sid_of_key(("v", arg.name))
                    sids.append(sid)
                    grounded = False
                else:
                    sems.append(hit[0])
                    sids.append(hit[1])
                    grounded = grounded and hit[2]
                    changed = True
            else:
                arg_sem, arg_sid, arg_grounded = normalize(arg, env)
                sems.append(arg_sem)
                sids.append(arg_sid)
                grounded = grounded and arg_grounded
                changed = changed or arg_sem is not arg
        sem = (
            term if not changed
            else _mk_call(term.pred, tuple(sems), term.trigger, term.flags)
        )
        key = ("@", term.pred, tuple(sids))
        sid = _INTERN.get(key)
        if sid is None:
            sid = _INTERN.setdefault(key, next(_NEXT_SID))
        triple = (sem, sid, grounded)
        if grounded:
            # A grounded result is closed and self-normal: stamp it so any
            # later normalize() of this node — as an operand, under any
            # environment — is two dict probes, never a re-walk.
            sem_dict = sem.__dict__
            sem_dict["_fv"] = _EMPTY_FV
            sem_dict["_norm"] = triple
            return triple
    elif kind is Lam:
        param = term.param
        inner = dict(env)
        inner[param] = neutral(param)
        body_sem, body_sid, _ = normalize(term.body, inner)
        sem = term if body_sem is term.body else _mk_lam(param, body_sem)
        triple = (sem, sid_of_key(("l", param, body_sid)), False)
    elif kind is App:
        fn_t = term.fn
        if type(fn_t) is Lam:
            # Syntactic redex: substitute straight into the body.
            inner = dict(env)
            inner[fn_t.param] = normalize(term.arg, env)
            return normalize(fn_t.body, inner)
        sub = type(fn_t)
        if sub is Var:
            hit = env.get(fn_t.name)
            fn = hit if hit is not None else (
                fn_t, _leaf_sid(fn_t, "v", fn_t.name), False)
        else:
            fn = normalize(fn_t, env)
        arg_t = term.arg
        sub = type(arg_t)
        if sub is Var:
            hit = env.get(arg_t.name)
            arg = hit if hit is not None else (
                arg_t, _leaf_sid(arg_t, "v", arg_t.name), False)
        elif sub is Const:
            arg = (arg_t, _leaf_sid(arg_t, "c", arg_t.value), True)
        else:
            arg = normalize(arg_t, env)
        triple = apply_triple(fn, arg)
        if not env:
            d["_norm"] = triple
        return triple
    else:
        raise TypeError(f"cannot normalize {term!r}")
    if not env:
        d["_norm"] = triple
    return triple


_EMPTY_ENV: dict[str, Triple] = {}
_EMPTY_FV: frozenset[str] = frozenset()


def lam_wrap(param: str, body: Triple) -> Triple:
    """Wrap a normalized body triple in a lambda binder (rule templates)."""
    return (
        _mk_lam(param, body[0]),
        sid_of_key(("l", param, body[1])),
        False,
    )


def make_call_triple(pred: str, args: tuple[Triple, ...], trigger,
                     flags: frozenset) -> Triple:
    """Build a predicate-application triple from normalized argument
    triples (rule templates; provenance fields pass straight through)."""
    grounded = True
    for arg in args:
        grounded = grounded and arg[2]
    sem = _mk_call(pred, tuple(arg[0] for arg in args), trigger, flags)
    triple = (sem, sid_of_key(("@", pred, tuple(arg[1] for arg in args))),
              grounded)
    if grounded:
        sem_dict = sem.__dict__
        sem_dict["_fv"] = _EMPTY_FV
        sem_dict["_norm"] = triple
    return triple


#: (id(fn_sem), id(arg_sem)) → (fn_sem, arg_sem, result triple).  The
#: result of applying one normal form to another is a pure function of the
#: two term *objects* (provenance included), so identity-keyed memoization
#: is exact; the stored references pin the keyed objects.  Hits come from
#: the lexical span cache sharing stamped semantics across sentences —
#: formulaic RFC prose re-applies the same function to the same argument
#: constantly.  Because the pins keep term objects alive, the lexical
#: cache calls :func:`reset_apply_memo` whenever it evicts a lexicon
#: generation: entries rooted in evicted sems could never hit again
#: (fresh generations allocate fresh objects), so dropping the whole memo
#: keeps memory bounded at the cost of re-deriving the live generation's
#: applications once.
_APPLY_MEMO: dict[tuple[int, int], tuple] = {}


def reset_apply_memo() -> None:
    """Drop every memoized application (see :data:`_APPLY_MEMO`)."""
    _APPLY_MEMO.clear()


def apply_triple(fn: Triple, arg: Triple) -> Triple:
    """Apply one normalized triple to another.

    A lambda callee substitutes the argument into its (already normal)
    body — free variables of that body other than the parameter are
    neutral, so a single-binding environment is complete.  Anything else
    forms a neutral application.
    """
    fn_sem = fn[0]
    if type(fn_sem) is Lam:
        arg_sem = arg[0]
        key = (id(fn_sem), id(arg_sem))
        hit = _APPLY_MEMO.get(key)
        if hit is not None:
            return hit[2]
        triple = normalize(fn_sem.body, {fn_sem.param: arg})
        _APPLY_MEMO[key] = (fn_sem, arg_sem, triple)
        return triple
    arg_sem = arg[0]
    return (
        _mk_app(fn_sem, arg_sem),
        sid_of_key(("a", fn[1], arg[1])),
        False,
    )
