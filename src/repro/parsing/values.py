"""A fused, memoizing normalizer for the chart's lambda semantics.

The reference chart normalizes every produced item with
:func:`repro.ccg.semantics.reduce_term` — repeated single-step beta
reduction, each step a full traversal — and then runs a second full
traversal for the dedup :func:`~repro.ccg.semantics.signature`.  On the
cold-parse path that multi-pass work dominates.

Here normalization, structural identity, and groundedness are computed in
**one pass**.  Everything flows as triples ``(sem, sid, grounded)``:

* ``sem`` — the β-normal term (ordinary :class:`~repro.ccg.semantics.Sem`
  nodes, provenance intact);
* ``sid`` — a hash-consed intern id: two terms get the same ``sid`` iff
  they have the same provenance-free structure, i.e. exactly the
  equivalence :func:`~repro.ccg.semantics.signature` induces, but a dict
  probe on small tuples instead of string assembly;
* ``grounded`` — :func:`~repro.ccg.semantics.is_grounded`, composed
  bottom-up.

:func:`normalize` evaluates a term under an environment of triples.
Because every term entering the system is already β-normal (lexical
semantics are hand-written normal forms; produced items are stored
normalized), redexes only appear when application substitutes a lambda
into function position — so the walk touches the substitution spine and
shortcuts everything else:

* subtrees with no free variable bound by the environment are returned
  as-is, with their triple cached *on the node* (``_norm`` in the
  instance dict), so repeated applications of the same function re-walk
  only what actually changes;
* free-variable sets are likewise cached per node (``_fv``);
* leaf sids cache on the ``Const``/``Var`` instances.

The intern table is process-global and content-addressed: equal keys map
to equal ids across sentences and parses, which makes sids comparable
everywhere and lets the formulaic structure of RFC prose intern once.  It
grows with the number of distinct logical-form shapes ever parsed — the
same growth discipline as the registry's parse cache.

Provenance survives untouched: ``Const`` spans ride along by object
identity and ``Call`` trigger/flags are copied field-for-field, so the
winnow checks see the same spans and triggers the reference backend
produces.  Binder names are kept verbatim (chart semantics are closed
terms, so reification under a binder never captures anything); β-normal
forms are unique up to those names (Church–Rosser), which is why this
normalizer and ``reduce_term`` agree structure-for-structure on every
grounded logical form — the property the backend-parity suite locks
corpus-wide.
"""

from __future__ import annotations

import itertools

from ..ccg.semantics import App, Call, Const, Lam, Sem, Var
from .profile import PROFILE

__all__ = ["normalize", "normalize_batch", "apply_triple", "Triple",
           "sid_of_key", "sid_apply", "sid_grounded", "neutral", "lam_wrap",
           "make_call_triple"]

#: (sem, sid, grounded)
Triple = tuple[Sem, int, bool]

# Frozen-dataclass construction goes through object.__setattr__ per field;
# on a path that builds hundreds of thousands of nodes per corpus that is
# pure overhead.  These constructors write the instance dict directly —
# field layout, equality, and hashing are unchanged.
_new = object.__new__


def _mk_call(pred, args, trigger, flags) -> Call:
    node = _new(Call)
    d = node.__dict__
    d["pred"] = pred
    d["args"] = args
    d["trigger"] = trigger
    d["flags"] = flags
    return node


def _mk_app(fn, arg) -> App:
    node = _new(App)
    d = node.__dict__
    d["fn"] = fn
    d["arg"] = arg
    return node


def _mk_lam(param, body) -> Lam:
    node = _new(Lam)
    d = node.__dict__
    d["param"] = param
    d["body"] = body
    return node


# -- hash consing --------------------------------------------------------------
#
# Id assignment is an atomic ``setdefault`` drawing from a counter, so
# racing threads can never hand one id to two different structures (at
# worst a counter value is burned and ids have gaps).

_INTERN: dict[tuple, int] = {}
_NEXT_SID = itertools.count()

#: sid → its structural key — the inverse of :data:`_INTERN`, maintained at
#: every intern site.  This is what lets the sid-level β-engine below walk
#: and rewrite structures without ever materializing term objects.
_KEY_OF: dict[int, tuple] = {}


def sid_of_key(key: tuple) -> int:
    """The intern id for a structural key (see module docstring)."""
    sid = _INTERN.get(key)
    if sid is None:
        sid = _INTERN.setdefault(key, next(_NEXT_SID))
        _KEY_OF.setdefault(sid, key)
    return sid


def _leaf_sid(leaf, tag: str, payload: str) -> int:
    d = leaf.__dict__
    sid = d.get("_sid")
    if sid is None:
        sid = d["_sid"] = sid_of_key((tag, payload))
    return sid


#: Shared neutral-variable triples for the binder names the rules use.
_NEUTRALS: dict[str, Triple] = {}


def neutral(name: str) -> Triple:
    """The neutral-variable triple for ``name`` (shared instance)."""
    triple = _NEUTRALS.get(name)
    if triple is None:
        var = Var(name)
        triple = _NEUTRALS[name] = (var, _leaf_sid(var, "v", name), False)
    return triple


# -- free variables ------------------------------------------------------------

def _free_vars(term: Sem) -> frozenset[str]:
    """Free-variable set, cached on the node (terms are immutable)."""
    d = term.__dict__
    fv = d.get("_fv")
    if fv is not None:
        return fv
    kind = type(term)
    if kind is Var:
        fv = frozenset((term.name,))
    elif kind is Const:
        fv = frozenset()
    elif kind is Lam:
        fv = _free_vars(term.body) - {term.param}
    elif kind is App:
        fv = _free_vars(term.fn) | _free_vars(term.arg)
    elif kind is Call:
        fv = frozenset()
        for arg in term.args:
            fv = fv | _free_vars(arg)
    else:
        raise TypeError(f"no free variables for {term!r}")
    d["_fv"] = fv
    return fv


# -- the normalizer ------------------------------------------------------------

def normalize(term: Sem, env: dict[str, Triple]) -> Triple:
    """Normalize ``term`` under ``env`` into a ``(sem, sid, grounded)``
    triple (see module docstring for the shortcut discipline)."""
    kind = type(term)
    if kind is Var:
        hit = env.get(term.name)
        if hit is not None:
            return hit
        return term, _leaf_sid(term, "v", term.name), False
    if kind is Const:
        return term, _leaf_sid(term, "c", term.value), True
    d = term.__dict__
    if env:
        fv = d.get("_fv")
        if fv is None:
            fv = _free_vars(term)
        for name in env:
            if name in fv:
                break
        else:
            env = _EMPTY_ENV  # nothing to substitute: closed w.r.t. env
    if not env:
        cached = d.get("_norm")
        if cached is not None:
            return cached
    if kind is Call:
        sems = []
        sids = []
        grounded = True
        changed = False
        for arg in term.args:
            sub = type(arg)
            if sub is Const:
                sems.append(arg)
                arg_dict = arg.__dict__
                sid = arg_dict.get("_sid")
                if sid is None:
                    sid = arg_dict["_sid"] = sid_of_key(("c", arg.value))
                sids.append(sid)
            elif sub is Var:
                hit = env.get(arg.name)
                if hit is None:
                    sems.append(arg)
                    arg_dict = arg.__dict__
                    sid = arg_dict.get("_sid")
                    if sid is None:
                        sid = arg_dict["_sid"] = sid_of_key(("v", arg.name))
                    sids.append(sid)
                    grounded = False
                else:
                    sems.append(hit[0])
                    sids.append(hit[1])
                    grounded = grounded and hit[2]
                    changed = True
            else:
                arg_sem, arg_sid, arg_grounded = normalize(arg, env)
                sems.append(arg_sem)
                sids.append(arg_sid)
                grounded = grounded and arg_grounded
                changed = changed or arg_sem is not arg
        sem = (
            term if not changed
            else _mk_call(term.pred, tuple(sems), term.trigger, term.flags)
        )
        key = ("@", term.pred, tuple(sids))
        sid = _INTERN.get(key)
        if sid is None:
            sid = _INTERN.setdefault(key, next(_NEXT_SID))
            _KEY_OF.setdefault(sid, key)
        triple = (sem, sid, grounded)
        if grounded:
            # A grounded result is closed and self-normal: stamp it so any
            # later normalize() of this node — as an operand, under any
            # environment — is two dict probes, never a re-walk.
            sem_dict = sem.__dict__
            sem_dict["_fv"] = _EMPTY_FV
            sem_dict["_norm"] = triple
            return triple
    elif kind is Lam:
        param = term.param
        if env:
            inner = dict(env)
            inner[param] = neutral(param)
        else:
            # Closed lambda: the one-binding environment is a pure
            # function of the parameter name — share it (environments
            # are never mutated once passed down).
            inner = _PARAM_ENVS.get(param)
            if inner is None:
                inner = _PARAM_ENVS[param] = {param: neutral(param)}
        body_sem, body_sid, _ = normalize(term.body, inner)
        sem = term if body_sem is term.body else _mk_lam(param, body_sem)
        triple = (sem, sid_of_key(("l", param, body_sid)), False)
    elif kind is App:
        fn_t = term.fn
        if type(fn_t) is Lam:
            # Syntactic redex: substitute straight into the body.
            arg_triple = normalize(term.arg, env)
            if env:
                inner = dict(env)
                inner[fn_t.param] = arg_triple
            else:
                inner = {fn_t.param: arg_triple}
            return normalize(fn_t.body, inner)
        sub = type(fn_t)
        if sub is Var:
            hit = env.get(fn_t.name)
            fn = hit if hit is not None else (
                fn_t, _leaf_sid(fn_t, "v", fn_t.name), False)
        else:
            fn = normalize(fn_t, env)
        arg_t = term.arg
        sub = type(arg_t)
        if sub is Var:
            hit = env.get(arg_t.name)
            arg = hit if hit is not None else (
                arg_t, _leaf_sid(arg_t, "v", arg_t.name), False)
        elif sub is Const:
            arg = (arg_t, _leaf_sid(arg_t, "c", arg_t.value), True)
        else:
            arg = normalize(arg_t, env)
        triple = apply_triple(fn, arg)
        if not env:
            d["_norm"] = triple
        return triple
    else:
        raise TypeError(f"cannot normalize {term!r}")
    if not env:
        d["_norm"] = triple
    return triple


_EMPTY_ENV: dict[str, Triple] = {}
_EMPTY_FV: frozenset[str] = frozenset()

#: param name → the shared ``{param: neutral(param)}`` environment used to
#: descend under a closed lambda (read-only by construction).
_PARAM_ENVS: dict[str, dict[str, Triple]] = {}


def normalize_batch(terms: list[Sem]) -> list[Triple]:
    """Normalize many closed terms in one topological pass.

    The per-term recursive :func:`normalize` re-enters every node of every
    derivation; when a batch of terms shares subderivations (one chart
    cell's items, one forest's root readings), that sharing is invisible
    to the recursion until the per-node ``_norm`` stamps start answering.
    This driver makes the sharing explicit: an iterative post-order walk
    over the *union* DAG of the batch stamps each distinct subterm exactly
    once, children before parents, so every parent normalization is a
    shallow combine over already-stamped children — no Python recursion
    down spines the batch has already visited.

    ``Lam`` nodes (and the syntactic-redex applications that substitute
    into them) are delegated whole to :func:`normalize`: their bodies
    normalize under a binder environment, which is exactly the recursion
    the stamps cannot replace.  Lambda nesting in chart semantics is
    shallow, so the delegated recursion is bounded by binder depth, not
    derivation size.

    Returns the ``(sem, sid, grounded)`` triple per input term, in input
    order — each identical to what ``normalize(term, {})`` returns.
    """
    stack = [(term, False) for term in reversed(terms)]
    push = stack.append
    while stack:
        term, ready = stack.pop()
        kind = type(term)
        if kind is Const or kind is Var:
            continue  # leaf sids are computed (and cached) inline
        if ready:
            normalize(term, _EMPTY_ENV)  # children stamped: shallow combine
            continue
        d = term.__dict__
        if d.get("_norm") is not None:
            continue
        if kind is Lam or (kind is App and type(term.fn) is Lam):
            normalize(term, _EMPTY_ENV)  # binder/redex: delegate whole
            continue
        push((term, True))
        if kind is Call:
            for arg in term.args:
                push((arg, False))
        elif kind is App:
            push((term.fn, False))
            push((term.arg, False))
        else:
            raise TypeError(f"cannot normalize {term!r}")
    return [normalize(term, _EMPTY_ENV) for term in terms]


def lam_wrap(param: str, body: Triple) -> Triple:
    """Wrap a normalized body triple in a lambda binder (rule templates)."""
    return (
        _mk_lam(param, body[0]),
        sid_of_key(("l", param, body[1])),
        False,
    )


def make_call_triple(pred: str, args: tuple[Triple, ...], trigger,
                     flags: frozenset) -> Triple:
    """Build a predicate-application triple from normalized argument
    triples (rule templates; provenance fields pass straight through)."""
    grounded = True
    for arg in args:
        grounded = grounded and arg[2]
    sem = _mk_call(pred, tuple(arg[0] for arg in args), trigger, flags)
    triple = (sem, sid_of_key(("@", pred, tuple(arg[1] for arg in args))),
              grounded)
    if grounded:
        sem_dict = sem.__dict__
        sem_dict["_fv"] = _EMPTY_FV
        sem_dict["_norm"] = triple
    return triple


#: (id(fn_sem), id(arg_sem)) → (fn_sem, arg_sem, result triple).  The
#: result of applying one normal form to another is a pure function of the
#: two term *objects* (provenance included), so identity-keyed memoization
#: is exact; the stored references pin the keyed objects.  Hits come from
#: the lexical span cache sharing stamped semantics across sentences —
#: formulaic RFC prose re-applies the same function to the same argument
#: constantly.  Because the pins keep term objects alive, the lexical
#: cache calls :func:`reset_apply_memo` whenever it evicts a lexicon
#: generation: entries rooted in evicted sems could never hit again
#: (fresh generations allocate fresh objects), so dropping the whole memo
#: keeps memory bounded at the cost of re-deriving the live generation's
#: applications once.
_APPLY_MEMO: dict[tuple[int, int], tuple] = {}


def reset_apply_memo() -> None:
    """Drop every memoized application (see :data:`_APPLY_MEMO`)."""
    _APPLY_MEMO.clear()


def reset_derived_memos() -> None:
    """Drop every derived memo while keeping the intern tables.

    Clears the term- and sid-level application/substitution/groundedness
    memos — everything recomputable from the interned structures.  The
    intern tables themselves (:data:`_INTERN` / :data:`_KEY_OF`) stay:
    sids are process-global identities that live :class:`PackedItem`\\ s
    may still hold, and re-interning is O(structure) noise next to the
    memoized work.  Used by cold-start benchmark bracketing.
    """
    _APPLY_MEMO.clear()
    _SID_APPLY_MEMO.clear()
    _SID_SUBST_MEMO.clear()
    _SID_GROUNDED.clear()


def apply_triple(fn: Triple, arg: Triple) -> Triple:
    """Apply one normalized triple to another.

    A lambda callee substitutes the argument into its (already normal)
    body — free variables of that body other than the parameter are
    neutral, so a single-binding environment is complete.  Anything else
    forms a neutral application.
    """
    fn_sem = fn[0]
    if type(fn_sem) is Lam:
        arg_sem = arg[0]
        key = (id(fn_sem), id(arg_sem))
        hit = _APPLY_MEMO.get(key)
        if hit is not None:
            PROFILE.apply_memo_hits += 1
            return hit[2]
        PROFILE.apply_memo_misses += 1
        triple = normalize(fn_sem.body, {fn_sem.param: arg})
        _APPLY_MEMO[key] = (fn_sem, arg_sem, triple)
        return triple
    arg_sem = arg[0]
    return (
        _mk_app(fn_sem, arg_sem),
        sid_of_key(("a", fn[1], arg[1])),
        False,
    )


# -- the sid-level β-engine ----------------------------------------------------
#
# Every sid names a β-normal structure (the intern keys only ever come out
# of the normalizer), so β-reduction can run *entirely over integers*:
# hereditary substitution on the interned keys, never touching a term
# object.  This is what lets the chart's production memo learn the
# (sid, grounded) outcome of a combination without building its semantics
# — term construction is deferred to items that actually enter a cell,
# while the packed/pruned majority (CCG's spurious ambiguity) costs dict
# probes over ints.  The mirrors are exact: ``sid_apply`` reproduces
# ``apply_triple``'s sid, including the capture discipline of
# :func:`normalize` (closed chart terms, binder names verbatim), which the
# backend-parity suite locks corpus-wide.

#: (fn sid, arg sid) → result sid.  Pure and process-global; unlike
#: :data:`_APPLY_MEMO` the keys are ints, so one entry serves every
#: provenance variant of the same structural application.
_SID_APPLY_MEMO: dict[tuple[int, int], int] = {}

#: (body sid, param, arg sid) → substituted sid.
_SID_SUBST_MEMO: dict[tuple[int, str, int], int] = {}

#: sid → groundedness of the structure it names.
_SID_GROUNDED: dict[int, bool] = {}


def sid_apply(fn_sid: int, arg_sid: int) -> int:
    """The sid of applying one normal structure to another (mirrors
    :func:`apply_triple` sid-for-sid)."""
    key = (fn_sid, arg_sid)
    hit = _SID_APPLY_MEMO.get(key)
    if hit is not None:
        return hit
    fkey = _KEY_OF[fn_sid]
    if fkey[0] == "l":
        result = _sid_subst(fkey[2], fkey[1], arg_sid)
    else:
        result = sid_of_key(("a", fn_sid, arg_sid))
    _SID_APPLY_MEMO[key] = result
    return result


def _sid_subst(body_sid: int, param: str, arg_sid: int) -> int:
    """Hereditary substitution ``body[param := arg]`` over sids.

    Normal in, normal out: substituting into a neutral application can
    expose a redex at its head, which re-enters :func:`sid_apply`.
    Shadowed binders stop the descent; otherwise the walk is as
    capture-naive as :func:`normalize` itself — the two must agree
    structure-for-structure, not be independently "correct"."""
    mkey = (body_sid, param, arg_sid)
    hit = _SID_SUBST_MEMO.get(mkey)
    if hit is not None:
        return hit
    key = _KEY_OF[body_sid]
    tag = key[0]
    if tag == "v":
        result = arg_sid if key[1] == param else body_sid
    elif tag == "c":
        result = body_sid
    elif tag == "@":
        args = key[2]
        new_args = []
        changed = False
        for a in args:
            na = _sid_subst(a, param, arg_sid)
            if na != a:
                changed = True
            new_args.append(na)
        result = (sid_of_key(("@", key[1], tuple(new_args)))
                  if changed else body_sid)
    elif tag == "l":
        if key[1] == param:
            result = body_sid  # shadowed
        else:
            new_body = _sid_subst(key[2], param, arg_sid)
            result = (body_sid if new_body == key[2]
                      else sid_of_key(("l", key[1], new_body)))
    else:  # "a": neutral application
        new_fn = _sid_subst(key[1], param, arg_sid)
        new_arg = _sid_subst(key[2], param, arg_sid)
        if new_fn == key[1] and new_arg == key[2]:
            result = body_sid
        else:
            result = sid_apply(new_fn, new_arg)
    _SID_SUBST_MEMO[mkey] = result
    return result


def sid_grounded(sid: int) -> bool:
    """Groundedness of the structure ``sid`` names (mirrors the triple
    flag :func:`normalize` computes: Consts are grounded, predicate
    applications inherit from their arguments, everything else is not)."""
    hit = _SID_GROUNDED.get(sid)
    if hit is not None:
        return hit
    key = _KEY_OF[sid]
    tag = key[0]
    if tag == "c":
        grounded = True
    elif tag == "@":
        grounded = True
        for arg in key[2]:
            if not sid_grounded(arg):
                grounded = False
                break
    else:  # "v", "l", "a"
        grounded = False
    _SID_GROUNDED[sid] = grounded
    return grounded
