"""The packed parse forest: shared subderivations, lazy LF enumeration.

A CKY chart whose cells deduplicate semantically is already *packing*
derivations — this module makes that packing explicit.  Each
:class:`PackedItem` is one (category, normal-form semantics) equivalence
class in one cell; every way the grammar derived it is recorded as a
backpointer in :attr:`PackedItem.derivations`, so the forest holds the full
derivation space in space proportional to the number of *distinct*
readings, not the number of parse trees.

Pruning is explicit: a :class:`PruneBudget` bounds how many distinct items
a cell may hold, and every item the budget rejects is *counted* on
:attr:`ParseForest.dropped_items` (surfaced as ``pruned`` on the
:class:`~repro.ccg.chart.ParseResult`, the pipeline's ``SentenceResult``,
and the API's ``SentenceReport``) — the silent ``MAX_CELL_ITEMS``
truncation the reference chart used to perform is now an auditable event.

Logical forms enumerate lazily: :meth:`ParseForest.logical_forms` is a
generator over the grounded root items in chart insertion order, so a
caller wanting only the first reading (or the first *n*) never pays for
the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..ccg.categories import NP, S, Category, category_id
from ..ccg.chart import MAX_CELL_ITEMS, ParseResult
from ..ccg.semantics import Sem, signature
from .profile import PROFILE

__all__ = ["PruneBudget", "PackedItem", "Derivation", "ParseForest"]


@dataclass(frozen=True)
class PruneBudget:
    """The explicit pruning contract for a chart parse.

    ``max_cell_items`` bounds the *distinct* (category, semantics) items a
    single cell may hold; additional derivations of an item already present
    pack onto it for free.  Items rejected by the bound are counted, never
    silently discarded.

    A budget below one item per cell is a contradiction, not a
    configuration: it could only ever produce an empty forest while
    *looking* like a successful parse with every item "dropped".  It fails
    loudly at construction instead.
    """

    max_cell_items: int = MAX_CELL_ITEMS

    def __post_init__(self) -> None:
        if self.max_cell_items < 1:
            raise ValueError(
                f"PruneBudget.max_cell_items must be >= 1, got "
                f"{self.max_cell_items}: a zero-item budget cannot parse "
                "anything and would silently return an empty forest"
            )


#: One way an item was derived: ``(rule, left, right)`` backpointers.
#: Lexical derivations use rule ``"lexical"`` with ``left``/``right`` None.
Derivation = tuple[str, "PackedItem | None", "PackedItem | None"]

LEXICAL_RULE = "lexical"

#: The backend's production function, registered by :mod:`.indexed` at
#: import time (avoids a circular import): ``(rule, left, right) -> tuple``
#: of ``(category, triple)`` productions.  Deferred items call it to build
#: their semantics on first demand.
_PRODUCER = None


def register_producer(produce) -> None:
    """Install the production function deferred items force through."""
    global _PRODUCER
    _PRODUCER = produce


class PackedItem:
    """One equivalence class of derivations in one chart cell.

    ``sem`` is the cell semantics exactly as the reference backend's cell
    would carry it (verbatim-stamped for lexical items, β-normal for
    combined items); ``ntriple`` is the normalized ``(sem, sid, grounded)``
    triple further combinations apply.  ``sid`` is the hash-consed
    structural id — equal ids mean equal provenance-free structure, the
    dedup relation; :attr:`sig` renders the portable signature string on
    demand for cross-parse comparison and debugging.

    Combined items are created :meth:`deferred`: their ``sid``, ``catid``
    and groundedness are known from the structural production memo alone,
    and those three are all chart construction ever consults — so the
    actual term is not built until something *reads* it (:meth:`triple`),
    which only happens along the backpointer cone of an enumerated root.
    The pruned/packed majority of chart items never pays term
    construction at all.
    """

    __slots__ = ("category", "catid", "sem", "sid", "grounded", "ntriple",
                 "derivations", "_sig", "_pending")

    def __init__(self, category: Category, sem: Sem, ntriple: tuple) -> None:
        self.category = category
        cid = category.__dict__.get("_cid")
        self.catid: int = category_id(category) if cid is None else cid
        self.sem = sem
        self.ntriple = ntriple
        self.sid: int = ntriple[1]
        self.grounded: bool = ntriple[2]
        self.derivations: list[Derivation] = []
        self._sig: str | None = None
        self._pending = None

    @classmethod
    def deferred(cls, category: Category, catid: int, sid: int,
                 grounded: bool, rule: int, litem: "PackedItem",
                 ritem: "PackedItem", position: int) -> "PackedItem":
        """A combined item whose term is built on first :meth:`triple` call
        from its founding candidate ``(rule, litem, ritem)`` — the same
        production an eager insert would have run, so the forced triple is
        value-identical."""
        item = cls.__new__(cls)
        item.category = category
        item.catid = catid
        item.sem = None
        item.ntriple = None
        item.sid = sid
        item.grounded = grounded
        item.derivations = []
        item._sig = None
        item._pending = (rule, litem, ritem, position)
        PROFILE.deferred_items += 1
        return item

    def triple(self) -> tuple:
        """The normalized ``(sem, sid, grounded)`` triple, building it (and
        transitively its children's) on first demand for deferred items."""
        t = self.ntriple
        if t is None:
            rule, litem, ritem, position = self._pending
            t = _PRODUCER(rule, litem, ritem)[position][1]
            self.sem = t[0]
            self.ntriple = t
            self._pending = None
            PROFILE.forced_items += 1
        return t

    @property
    def nsem(self) -> Sem:
        """The β-normal form of :attr:`sem`."""
        return self.triple()[0]

    @property
    def sig(self) -> str:
        """The :func:`~repro.ccg.semantics.signature` of this item."""
        if self._sig is None:
            self._sig = signature(self.nsem)
        return self._sig

    def derivation_count(self) -> int:
        """How many distinct ways this item was derived (packing width)."""
        return len(self.derivations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedItem({self.category}, {self.sig}, ×{len(self.derivations)})"


class ParseForest:
    """Everything one sentence's chart derived, packed.

    ``cells`` maps spans to their item lists in insertion order — the same
    order the reference backend's cells carry, which is what makes forest
    enumeration order (and therefore every downstream survivor list)
    backend-independent.
    """

    def __init__(self, length: int, cells: dict[tuple[int, int], list[PackedItem]],
                 unknown_words: list[str], dropped_items: int,
                 budget: PruneBudget, cells_filled: int,
                 backend: str = "") -> None:
        self.length = length
        self.cells = cells
        self.unknown_words = unknown_words
        self.dropped_items = dropped_items
        self.budget = budget
        self.cells_filled = cells_filled
        self.backend = backend

    @property
    def pruned(self) -> bool:
        """True when the budget rejected at least one item: the forest (and
        every LF set enumerated from it) may be incomplete."""
        return self.dropped_items > 0

    # -- enumeration -----------------------------------------------------------
    def root_items(self) -> list[PackedItem]:
        """Full-span items with a root category (S, or NP for fragments)
        and grounded semantics, in chart insertion order."""
        return [
            item
            for item in self.cells.get((0, self.length), [])
            if item.category in (S, NP) and item.grounded
        ]

    def logical_forms(self) -> Iterator[Sem]:
        """Lazily enumerate the grounded root logical forms.

        Signature-deduplicated across root categories (an S and an NP
        reading with identical semantics count once), preserving insertion
        order — identical to the eager list the reference backend builds.
        """
        seen: set[int] = set()
        for item in self.root_items():
            if item.sid not in seen:
                seen.add(item.sid)
                sem = item.sem
                yield sem if sem is not None else item.triple()[0]

    def normal_forms(self) -> list[Sem]:
        """The β-normal forms of :meth:`logical_forms`, batch-normalized.

        One topological pass over the union DAG of the root readings
        (:func:`~repro.parsing.values.normalize_batch`) normalizes every
        shared subderivation once; readings the chart already stored in
        normal form answer from their per-node stamps.  Same order and
        dedup as :meth:`logical_forms`.
        """
        from .values import normalize_batch

        return [triple[0]
                for triple in normalize_batch(list(self.logical_forms()))]

    # -- statistics ------------------------------------------------------------
    def item_count(self) -> int:
        return sum(len(items) for items in self.cells.values())

    def packed_derivations(self) -> int:
        """Total derivations across all items — how much tree-space the
        packing shares (≥ :meth:`item_count`)."""
        return sum(
            len(item.derivations)
            for items in self.cells.values()
            for item in items
        )

    # -- adaptation ------------------------------------------------------------
    def to_result(self) -> ParseResult:
        """The flat :class:`~repro.ccg.chart.ParseResult` view of the forest."""
        return ParseResult(
            logical_forms=list(self.logical_forms()),
            unknown_words=self.unknown_words,
            token_count=self.length,
            cells_filled=self.cells_filled,
            dropped_items=self.dropped_items,
            backend=self.backend,
        )
