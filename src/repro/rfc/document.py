"""Structured model of an RFC document.

The pre-processor (§3 "Extracting structural and non-textual elements")
turns flat RFC text into this model: message sections with their header
diagrams, per-field description blocks (with the ``0 = Echo Reply`` value
idiom parsed out), and behaviour prose.  Document structure is what later
supplies *dynamic context* for code generation (Table 4) and the subject for
re-parsing incomplete field sentences (§4.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..nlp.tokenizer import normalize_term, split_sentences
from .header_diagram import DiagramParse

# "0 = net unreachable;"  /  "8 for echo message;"
_VALUE_EQ = re.compile(r"^(\d+)\s*=\s*(.+?)[;.]?$")
_VALUE_FOR = re.compile(r"^(\d+)\s+for\s+(.+?)[;.]?$")


@dataclass
class ValueBinding:
    """One enumerated value: ``0 = net unreachable``."""

    value: int
    meaning: str

    @property
    def meaning_term(self) -> str:
        return normalize_term(self.meaning)


@dataclass
class FieldDescription:
    """One field's description block within a message section."""

    name: str
    sentences: list[str] = field(default_factory=list)
    values: list[ValueBinding] = field(default_factory=list)
    group: str = ""  # "ip" | "icmp" | "" — from the "IP Fields:" markers

    @property
    def term(self) -> str:
        return normalize_term(self.name)

    @property
    def fixed_value(self) -> int | None:
        """A bare numeric description ("Type\\n 3") fixes the field's value."""
        if len(self.values) == 1 and not self.sentences and not self.values[0].meaning:
            return self.values[0].value
        if len(self.sentences) == 1 and self.sentences[0].rstrip(".").strip().isdigit():
            return int(self.sentences[0].rstrip(".").strip())
        return None


@dataclass
class MessageSection:
    """One message's section: diagram, fields, and description prose."""

    title: str
    diagram: DiagramParse | None = None
    fields: list[FieldDescription] = field(default_factory=list)
    description_sentences: list[str] = field(default_factory=list)

    @property
    def message_names(self) -> list[str]:
        """"Echo or Echo Reply Message" → ["echo", "echo reply"]."""
        base = self.title.strip()
        base = re.sub(r"\s+message\s*$", "", base, flags=re.IGNORECASE)
        return [part.strip().lower() for part in re.split(r"\s+or\s+", base)]

    def field_named(self, name: str) -> FieldDescription | None:
        wanted = normalize_term(name)
        for description in self.fields:
            if description.term == wanted:
                return description
        return None

    def type_values(self) -> dict[str, int]:
        """Map message name → type value from the Type field's enumeration.

        "8 for echo message; 0 for echo reply message" →
        ``{"echo": 8, "echo reply": 0}``.  A single bare value maps every
        message name in the section to it.
        """
        type_field = self.field_named("type")
        if type_field is None:
            return {}
        result: dict[str, int] = {}
        if type_field.fixed_value is not None:
            for name in self.message_names:
                result[name] = type_field.fixed_value
            return result
        for binding in type_field.values:
            cleaned = re.sub(
                r"\s+message\s*$", "", binding.meaning.strip(), flags=re.IGNORECASE
            )
            result[cleaned.lower()] = binding.value
        return result


@dataclass
class IntroSection:
    """Leading prose sections (Introduction, Message Formats, ...)."""

    title: str
    sentences: list[str] = field(default_factory=list)


@dataclass
class RFCDocument:
    """A parsed RFC: intro prose plus message sections."""

    number: str
    title: str
    intro_sections: list[IntroSection] = field(default_factory=list)
    message_sections: list[MessageSection] = field(default_factory=list)

    def section_titled(self, title: str) -> MessageSection | None:
        for section in self.message_sections:
            if section.title.lower() == title.lower():
                return section
        return None

    def all_sentences(self) -> list[str]:
        sentences: list[str] = []
        for intro in self.intro_sections:
            sentences.extend(intro.sentences)
        for section in self.message_sections:
            for field_description in section.fields:
                sentences.extend(field_description.sentences)
            sentences.extend(section.description_sentences)
        return sentences


def parse_value_binding(line: str) -> ValueBinding | None:
    """Parse the ``0 = Echo Reply`` / ``8 for echo message`` idioms."""
    text = line.strip()
    for pattern in (_VALUE_EQ, _VALUE_FOR):
        match = pattern.match(text)
        if match:
            return ValueBinding(value=int(match.group(1)), meaning=match.group(2))
    return None


def split_description_sentences(text: str) -> list[str]:
    """Sentence-split a description block, dropping parentheticals."""
    cleaned = re.sub(r"\([^)]*\)", "", text)
    cleaned = re.sub(r"\s+", " ", cleaned).strip()
    if not cleaned:
        return []
    return split_sentences(cleaned)
