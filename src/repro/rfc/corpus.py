"""Bundled RFC corpora and the sentence/context extraction.

Parses the curated RFC excerpts shipped in ``repro/data`` (see DESIGN.md for
the substitution rationale and data-file format), producing
:class:`SpecSentence` records — each sentence paired with the dynamic
context (protocol, message, field) that the document structure implies,
exactly the context dictionary of Table 4.

Also models ``rewrites.json``: the human-in-the-loop record of every
sentence the paper reports rewriting (ambiguous, unparseable, or
under-specified), used by the pipeline's ``revised`` mode (Figure 4's
feedback loop).

Loading and caching live in :mod:`repro.rfc.registry`; the ``*_corpus()``
functions and rewrite loaders here are thin wrappers over the default
registry, kept for the paper-style API (``icmp_corpus()``) and backward
compatibility.  Repeated calls return the same memoized objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .document import RFCDocument
from .preprocess import parse_rfc_text

KIND_INTRO = "intro"
KIND_FIELD = "field"
KIND_DESCRIPTION = "description"


@dataclass(frozen=True)
class SpecSentence:
    """One specification sentence plus its structural context."""

    text: str
    protocol: str
    message: str  # section title, e.g. "Echo or Echo Reply Message"
    field: str  # normalized field term, or "" for behaviour prose
    kind: str  # intro | field | description
    field_group: str = ""  # "ip" | "icmp" | "" — which Fields: block

    def context(self) -> dict[str, str]:
        """The dynamic-context dictionary of Table 4."""
        return {
            "protocol": self.protocol,
            "message": self.message,
            "field": self.field,
            "role": "",
        }


@dataclass
class Corpus:
    """A parsed RFC document plus its flattened sentence records."""

    protocol: str
    document: RFCDocument
    sentences: list[SpecSentence] = field(default_factory=list)

    def field_sentences(self) -> list[SpecSentence]:
        return [s for s in self.sentences if s.kind == KIND_FIELD]

    def description_sentences(self) -> list[SpecSentence]:
        return [s for s in self.sentences if s.kind == KIND_DESCRIPTION]


def extract_sentences(document: RFCDocument, protocol: str) -> list[SpecSentence]:
    records: list[SpecSentence] = []
    for intro in document.intro_sections:
        for sentence in intro.sentences:
            records.append(
                SpecSentence(sentence, protocol, intro.title, "", KIND_INTRO)
            )
    for section in document.message_sections:
        for field_description in section.fields:
            for sentence in field_description.sentences:
                records.append(
                    SpecSentence(
                        sentence, protocol, section.title,
                        field_description.term, KIND_FIELD,
                        field_group=field_description.group,
                    )
                )
        for sentence in section.description_sentences:
            records.append(
                SpecSentence(sentence, protocol, section.title, "", KIND_DESCRIPTION)
            )
    return records


def corpus_from_text(text: str, protocol: str) -> Corpus:
    """Parse RFC-formatted ``text`` into a :class:`Corpus` for ``protocol``."""
    document = parse_rfc_text(text)
    return Corpus(
        protocol=protocol,
        document=document,
        sentences=extract_sentences(document, protocol),
    )


def _registry():
    from .registry import default_registry

    return default_registry()


def icmp_corpus() -> Corpus:
    """RFC 792 (ICMP): all eight message types (cached)."""
    return _registry().load_corpus("ICMP")


def igmp_corpus() -> Corpus:
    """RFC 1112 Appendix I (IGMP v1): the packet-header description (cached)."""
    return _registry().load_corpus("IGMP")


def ntp_corpus() -> Corpus:
    """RFC 1059 (NTP): packet format and timeout dispatch (cached)."""
    return _registry().load_corpus("NTP")


def bfd_corpus() -> Corpus:
    """RFC 5880 §4.1 + §6.8.6 (BFD): header and state management (cached)."""
    return _registry().load_corpus("BFD")


@dataclass(frozen=True)
class Rewrite:
    """One human rewrite: original sentence → revised sentence(s)."""

    original: str
    revised: str
    category: str  # "ambiguous" | "unparsed" | "imprecise" | "non-actionable"
    note: str = ""


def load_rewrites() -> list[Rewrite]:
    """The human-in-the-loop rewrite record (Table 6 and §6.4), cached."""
    return _registry().load_rewrites()


def rewrites_by_original() -> dict[str, Rewrite]:
    return _registry().rewrites()


def sentence_key(sentence: str) -> str:
    """Whitespace-insensitive sentence identity."""
    return " ".join(sentence.lower().split())


def find_rewrite(sentence: str) -> Rewrite | None:
    return rewrites_by_original().get(sentence_key(sentence))
