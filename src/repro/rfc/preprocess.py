"""RFC text → structured document (the pre-processing stage of Figure 1).

Follows the layout conventions of classic RFCs (and RFC 7322 style):

* flush-left lines are section titles; titles ending in "Message" open a
  message section;
* indented runs of ``+-+`` / ``|...|`` lines are header diagrams;
* within a message section, short 3-space-indented lines are field names
  and the 6-space-indented block beneath each is its description;
* ``IP Fields:`` / ``ICMP Fields:`` markers group fields; ``Description``
  introduces behaviour prose;
* ``0 = net unreachable;`` style lines are value bindings, not sentences.
"""

from __future__ import annotations

import re

from ..nlp.tokenizer import normalize_term
from .document import (
    FieldDescription,
    IntroSection,
    MessageSection,
    RFCDocument,
    ValueBinding,
    parse_value_binding,
    split_description_sentences,
)
from .header_diagram import extract_layout, is_diagram_line, is_diagram_start, is_ruler_line

_FIELD_MARKER = re.compile(r"^\s{2,4}\S.*:\s*$")  # "IP Fields:" etc.
_TITLE = re.compile(r"^\S.*$")  # flush-left line


def parse_rfc_text(text: str, number: str = "", title: str = "") -> RFCDocument:
    """Parse RFC-formatted ``text`` into an :class:`RFCDocument`."""
    lines = text.splitlines()
    header_number, header_title, body_start = _parse_preamble(lines)
    document = RFCDocument(
        number=number or header_number, title=title or header_title
    )

    index = body_start
    current_intro: IntroSection | None = None
    current_message: MessageSection | None = None
    current_field: FieldDescription | None = None
    current_group = ""
    description_mode = False
    prose_buffer: list[str] = []

    def flush_prose() -> None:
        nonlocal prose_buffer
        if not prose_buffer:
            return
        sentences = split_description_sentences(" ".join(prose_buffer))
        if current_field is not None and not description_mode:
            for sentence in sentences:
                bare = sentence.rstrip(".").strip()
                if bare.isdigit():
                    # A bare value ("Type\n   3") fixes the field, it is not prose.
                    current_field.values.append(ValueBinding(int(bare), meaning=""))
                else:
                    current_field.sentences.append(sentence)
        elif current_message is not None:
            current_message.description_sentences.extend(sentences)
        elif current_intro is not None:
            current_intro.sentences.extend(sentences)
        prose_buffer = []

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()

        if not stripped:
            flush_prose()
            index += 1
            continue

        if _TITLE.match(line):
            flush_prose()
            current_field = None
            description_mode = False
            if stripped.lower().endswith("message"):
                current_group = ""
                current_message = MessageSection(title=stripped)
                document.message_sections.append(current_message)
                current_intro = None
            else:
                current_intro = IntroSection(title=stripped)
                document.intro_sections.append(current_intro)
                current_message = None
            index += 1
            continue

        if is_ruler_line(line) and current_message is not None:
            # Bit ruler above a drawing: skip (a lone field value like "3"
            # fails is_ruler_line and stays prose).
            index += 1
            continue

        if (
            is_diagram_start(line)
            and current_message is not None
            and current_message.diagram is None
        ):
            flush_prose()
            diagram_lines = []
            while index < len(lines) and is_diagram_line(lines[index]):
                diagram_lines.append(lines[index])
                index += 1
            protocol = normalize_term(current_message.title)
            current_message.diagram = extract_layout(diagram_lines, protocol=protocol)
            continue

        if current_message is not None:
            indent = len(line) - len(line.lstrip())
            if _FIELD_MARKER.match(line):
                flush_prose()
                current_field = None
                description_mode = False
                marker = stripped.rstrip(":").lower()
                current_group = marker.split()[0] if "field" in marker else ""
                index += 1
                continue
            if indent == 3 and _is_field_name(stripped):
                flush_prose()
                if stripped.lower() == "description":
                    current_field = None
                    description_mode = True
                else:
                    current_field = FieldDescription(name=stripped, group=current_group)
                    current_message.fields.append(current_field)
                    description_mode = False
                index += 1
                continue
            # Deeper indent: description content for the open field/block.
            binding = parse_value_binding(stripped)
            if binding is not None and current_field is not None:
                flush_prose()
                current_field.values.append(binding)
                index += 1
                continue
            prose_buffer.append(stripped)
            index += 1
            continue

        # Intro prose.
        prose_buffer.append(stripped)
        index += 1

    flush_prose()
    return document


def _parse_preamble(lines: list[str]) -> tuple[str, str, int]:
    """Pull ``RFC: <number>`` and the document title off the top."""
    number = ""
    title = ""
    index = 0
    while index < len(lines) and index < 5:
        stripped = lines[index].strip()
        if stripped.upper().startswith("RFC:"):
            number = stripped.split(":", 1)[1].strip()
        elif stripped and not title:
            title = stripped
        if number and title:
            index += 1
            break
        index += 1
    return number, title, index


def _is_field_name(text: str) -> bool:
    """Field names are short title-ish lines without final punctuation."""
    if text.endswith((".", ";", ":")):
        return False
    words = text.split()
    if not 1 <= len(words) <= 4:
        return False
    return all(word[0].isupper() or word[0].isdigit() for word in words)
