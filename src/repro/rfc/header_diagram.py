"""ASCII-art packet diagram extraction (§3).

RFCs draw packet formats as::

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
   |     Type      |     Code      |          Checksum             |
   +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

Each bit column is two characters wide, so a cell spanning ``w`` characters
holds ``(w + 1) / 2`` bits.  The extractor returns a
:class:`~repro.framework.packet.HeaderLayout`, from which SAGE generates the
header struct (``to_c_struct``) or a live Python codec
(``to_header_class``).  Open-ended rows ("Data ...") and quoted-datagram
rows become variable-length payload markers rather than fixed fields.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..framework.packet import HeaderLayout, LayoutField

_BORDER = re.compile(r"^\s*\+(-\+)+-?\s*$")
_CELL_ROW = re.compile(r"^\s*\|.*")
_RULER = re.compile(r"^\s*[0-9][0-9 ]*$")

# Row contents that mean "the rest of the packet", not a fixed field.
_PAYLOAD_MARKERS = ("...", "internet header + 64 bits", "data ...")


@dataclass
class DiagramParse:
    """A parsed diagram: fixed fields plus any variable-length payload name."""

    layout: HeaderLayout
    payload_name: str | None = None
    raw_lines: list[str] = field(default_factory=list)


def is_diagram_line(line: str) -> bool:
    """True for ruler, border, and cell rows of a header drawing."""
    return bool(
        _BORDER.match(line) or is_ruler_line(line) or _CELL_ROW.match(line)
    )


def is_diagram_start(line: str) -> bool:
    """True only for unambiguous diagram openers: borders and cell rows.

    Rulers are NOT accepted as starts — a bare field value like ``3`` also
    matches the digits-and-spaces pattern, and must stay prose.
    """
    return bool(_BORDER.match(line) or _CELL_ROW.match(line))


def is_ruler_line(line: str) -> bool:
    """A bit ruler: only digits and spaces, with at least four digits."""
    if not _RULER.match(line):
        return False
    return sum(char.isdigit() for char in line) >= 4


def extract_layout(lines: list[str], protocol: str = "header") -> DiagramParse:
    """Parse diagram ``lines`` into a layout.

    Cell rows are split on ``|``; each cell's character width maps to bits.
    A row whose single cell covers 32 bits and whose label matches a payload
    marker (or is open-ended) terminates the fixed layout.
    """
    fields: list[LayoutField] = []
    payload_name: str | None = None
    seen: dict[str, int] = {}

    for line in lines:
        if _BORDER.match(line) or _RULER.match(line) or not _CELL_ROW.match(line):
            continue
        stripped = line.strip()
        open_ended = not stripped.endswith("|")
        cells = [cell for cell in stripped.strip("|").split("|")]
        row_fields = []
        for cell in cells:
            name = " ".join(cell.split()) or "unused"
            bits = (len(cell) + 1) // 2
            row_fields.append((name, bits))
        label = row_fields[0][0].lower() if row_fields else ""
        is_payload = open_ended or any(
            marker in label for marker in _PAYLOAD_MARKERS
        )
        if is_payload and len(row_fields) == 1:
            payload_name = row_fields[0][0].rstrip(". ")
            break
        for name, bits in row_fields:
            canonical = _canonical_name(name, seen)
            fields.append(LayoutField(canonical, bits))

    layout = HeaderLayout(protocol=protocol, fields=fields)
    return DiagramParse(layout=layout, payload_name=payload_name, raw_lines=list(lines))


def _canonical_name(name: str, seen: dict[str, int]) -> str:
    """snake_case the field name, deduplicating repeats (unused, unused_2)."""
    canonical = re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_") or "unused"
    count = seen.get(canonical, 0)
    seen[canonical] = count + 1
    if count:
        return f"{canonical}_{count + 1}"
    return canonical
