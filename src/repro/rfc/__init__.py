"""RFC document processing: structure, diagrams, corpora."""

from .corpus import (
    Corpus,
    Rewrite,
    SpecSentence,
    bfd_corpus,
    extract_sentences,
    find_rewrite,
    icmp_corpus,
    igmp_corpus,
    load_rewrites,
    ntp_corpus,
)
from .document import (
    FieldDescription,
    IntroSection,
    MessageSection,
    RFCDocument,
    ValueBinding,
)
from .header_diagram import DiagramParse, extract_layout, is_diagram_line
from .preprocess import parse_rfc_text

__all__ = [
    "Corpus",
    "DiagramParse",
    "FieldDescription",
    "IntroSection",
    "MessageSection",
    "RFCDocument",
    "Rewrite",
    "SpecSentence",
    "ValueBinding",
    "bfd_corpus",
    "extract_layout",
    "extract_sentences",
    "find_rewrite",
    "icmp_corpus",
    "igmp_corpus",
    "is_diagram_line",
    "load_rewrites",
    "ntp_corpus",
    "parse_rfc_text",
]
