"""RFC document processing: structure, diagrams, corpora, the registry."""

from .corpus import (
    Corpus,
    Rewrite,
    SpecSentence,
    bfd_corpus,
    corpus_from_text,
    extract_sentences,
    find_rewrite,
    icmp_corpus,
    igmp_corpus,
    load_rewrites,
    ntp_corpus,
)
from .document import (
    FieldDescription,
    IntroSection,
    MessageSection,
    RFCDocument,
    ValueBinding,
)
from .header_diagram import DiagramParse, extract_layout, is_diagram_line
from .preprocess import parse_rfc_text
from .registry import (
    ProtocolRegistry,
    ProtocolSpec,
    UnknownProtocolError,
    default_registry,
    load_corpus,
    register_protocol,
)

__all__ = [
    "Corpus",
    "DiagramParse",
    "FieldDescription",
    "IntroSection",
    "MessageSection",
    "ProtocolRegistry",
    "ProtocolSpec",
    "RFCDocument",
    "Rewrite",
    "SpecSentence",
    "UnknownProtocolError",
    "ValueBinding",
    "bfd_corpus",
    "corpus_from_text",
    "default_registry",
    "extract_layout",
    "extract_sentences",
    "find_rewrite",
    "icmp_corpus",
    "igmp_corpus",
    "is_diagram_line",
    "load_corpus",
    "load_rewrites",
    "ntp_corpus",
    "parse_rfc_text",
    "register_protocol",
]
