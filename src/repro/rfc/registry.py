"""The cached protocol registry: one canonical home for bundled corpora.

Every stage of the pipeline needs the same handful of expensive artifacts —
parsed RFC corpora, the ~400-term networking dictionary, the CCG lexicon,
and a chart parser built over it.  Before this module each consumer rebuilt
them on demand: four hardcoded ``*_corpus()`` loaders re-read and re-parsed
their RFC text on every call, ``build_lexicon()`` was invoked at eight call
sites, and each ``Sage()`` re-paid dictionary + lexicon + parser
construction.

:class:`ProtocolRegistry` replaces that with a single registration +
memoization layer:

* ``register_protocol(name, source)`` declares a protocol once — a data file
  in ``repro.data`` (or an inline/filesystem spec) is all a new protocol
  needs; no code edits across layers;
* ``load_corpus(name)`` parses at most once per registry and returns the
  same :class:`~repro.rfc.corpus.Corpus` object on every subsequent call;
* ``dictionary()`` / ``lexicon()`` / ``chunker()`` / ``parser()`` /
  ``rewrites()`` memoize the NLP/CCG substrate the same way.

The default registry (module-level :func:`default_registry`) ships with the
paper's four protocols.  All cached objects are shared: treat them as
read-only, or call :meth:`ProtocolRegistry.invalidate` after mutating the
underlying data files.  See DESIGN.md for the data-file format.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from importlib import resources

from ..ccg.chart import CCGChartParser
from ..ccg.lexicon import Lexicon, build_lexicon
from ..parsing import DEFAULT_PARSER_BACKEND, create_parser
from ..nlp.chunker import NounPhraseChunker
from ..nlp.terms import TermDictionary, load_default_dictionary
from .corpus import Corpus, Rewrite, corpus_from_text, sentence_key

DEFAULT_PACKAGE = "repro.data"

#: The corpora bundled with the reproduction
#: (name, data file, description, sender-built message names).
BUNDLED_PROTOCOLS: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
    ("ICMP", "rfc792_icmp.txt", "RFC 792: all eight ICMP message types",
     ("echo", "timestamp", "information request")),
    ("IGMP", "rfc1112_igmp.txt", "RFC 1112 Appendix I: IGMP v1 packet header",
     ()),
    ("NTP", "rfc1059_ntp.txt", "RFC 1059: NTP data format and timeout dispatch",
     ()),
    ("BFD", "rfc5880_bfd.txt", "RFC 5880: control packet and reception rules",
     ()),
)


class UnknownProtocolError(KeyError):
    """Lookup of a protocol that was never registered."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown protocol {name!r}: registered protocols are "
            f"{', '.join(known) or '(none)'}"
        )

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0]


@dataclass(frozen=True)
class ProtocolSpec:
    """How to obtain one protocol's curated RFC excerpt.

    Exactly one of ``source`` (a resource filename inside ``package``),
    ``path`` (a filesystem path), or ``text`` (the spec text inline) feeds
    the loader.
    """

    name: str
    source: str = ""
    package: str = DEFAULT_PACKAGE
    path: str = ""
    text: str = ""
    description: str = ""
    #: Messages the probing sender constructs; everything else is built by
    #: the responding node.  Consumed by the generator's role policy
    #: (``builder_role``) via :meth:`ProtocolRegistry.sender_built`.
    sender_built: tuple[str, ...] = ()
    #: The parser backend this protocol's corpus prefers ("" = the
    #: process default).  Engines without an explicit backend of their own
    #: resolve each sentence's protocol through
    #: :meth:`ProtocolRegistry.parser_backend_for`.
    parser_backend: str = ""

    def read_text(self) -> str:
        if self.text:
            return self.text
        if self.path:
            with open(self.path, encoding="utf-8") as handle:
                return handle.read()
        return resources.files(self.package).joinpath(self.source).read_text()


class ParseCache:
    """A content-addressed store for sentence parses.

    Keys are built by the parse stage as ``(substrate_fingerprint,
    sentence_text, field)`` — the fingerprint covers the lexicon and chunker
    content, so a cache shared across Sage instances, both pipeline modes,
    and worker processes can never serve a parse produced under a different
    grammar.  Values are whatever the stage stores (the pipeline stores the
    ``(ParseResult, subject_supplied)`` pair); they are shared objects and
    must be treated as read-only.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: tuple, value) -> None:
        with self._lock:
            self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def items(self) -> dict[tuple, object]:
        """Snapshot of the current entries (for merging across workers)."""
        with self._lock:
            return dict(self._entries)

    def merge(self, entries: dict[tuple, object]) -> int:
        """Adopt entries learned elsewhere (e.g. in a worker process)."""
        added = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._entries:
                    self._entries[key] = value
                    added += 1
        return added

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"size": len(self._entries), "hits": self.hits,
                    "misses": self.misses}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


class CompiledProgramCache(ParseCache):
    """A content-addressed store for compiled generated programs.

    Keys are built by the runtime harness as ``(backend_name, sha1)`` where
    the SHA-1 covers the Python source (exec backend) or the IR fingerprint
    (interpreter backend), so identical generated code compiles exactly
    once per process no matter how many engines or scenarios request it.
    Values are function dictionaries (name → callable); they are shared
    objects and must be treated as read-only.  Unlike parse-cache entries,
    compiled functions are not picklable — forked sweep workers inherit the
    warm cache by memory copy, but entries compiled inside a worker are not
    merged back.
    """

    # Source-persistence hooks, overridden by the disk-backed
    # PersistentCompiledCache (repro.cache.persistent): the harness asks
    # for a previously rendered source before re-rendering, and publishes
    # the source it renders.  The in-memory cache has nowhere to keep
    # sources across processes, so these are deliberate no-ops.
    def get_source(self, key: tuple) -> str | None:
        return None

    def put_source(self, key: tuple, source: str) -> None:
        return None


class ProtocolRegistry:
    """Protocol registration plus memoized corpus/dictionary/lexicon access.

    The registry is also where recorded human decisions replay: a
    :class:`~repro.disambiguation.resolution.DecisionJournal` attached via
    :meth:`attach_journal` overlays its rewrite/annotate resolutions on the
    bundled ``rewrites.json`` table (journal wins per sentence) and exposes
    its force-select decisions through :meth:`selections`.  Constructing
    with ``bundled_rewrites=False`` starts from an empty rewrite table —
    the journal then carries *every* decision (the generalized successor of
    ``rewrites.json``).
    """

    def __init__(self, package: str = DEFAULT_PACKAGE,
                 bundled: bool = True, bundled_rewrites: bool = True,
                 cache_dir: str | os.PathLike | None = None) -> None:
        self.package = package
        self.bundled_rewrites = bundled_rewrites
        # Persistent-cache root: an explicit cache_dir wins, then the
        # REPRO_CACHE_DIR environment variable; None keeps the caches
        # purely in-memory (the historical behavior, and the default for
        # hermetic test runs).
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self._cache_store = None
        self._specs: dict[str, ProtocolSpec] = {}
        self._corpora: dict[str, Corpus] = {}
        self._lexicons: dict[tuple, Lexicon] = {}
        self._parsers: dict[tuple, CCGChartParser] = {}
        self._dictionary: TermDictionary | None = None
        self._chunker: NounPhraseChunker | None = None
        self._rewrites: list[Rewrite] | None = None
        self._rewrites_by_original: dict[str, Rewrite] | None = None
        self._journal = None
        self._parse_cache: ParseCache | None = None
        self._winnow_cache: ParseCache | None = None
        self._compiled_cache: CompiledProgramCache | None = None
        self._lock = threading.RLock()
        if bundled:
            for name, source, description, sender_built in BUNDLED_PROTOCOLS:
                # Bundled corpora always live in repro.data, independent of
                # the package a custom registry defaults new registrations to.
                self.register_protocol(
                    name, source, package=DEFAULT_PACKAGE,
                    description=description, sender_built=sender_built,
                )

    # -- registration ---------------------------------------------------------
    def register_protocol(self, name: str, source: str = "", *,
                          package: str | None = None, path: str = "",
                          text: str = "", description: str = "",
                          sender_built: tuple[str, ...] = (),
                          parser_backend: str = "",
                          replace: bool = False) -> ProtocolSpec:
        """Declare a protocol; adding a new workload is this one call.

        ``name`` is canonicalized to upper case; lookups are
        case-insensitive.  ``parser_backend`` pins the protocol to a
        registered parsing backend (default: the process default —
        currently ``"indexed"``); engines resolve it per sentence.
        Re-registering an existing name requires ``replace=True`` (and
        drops its cached corpus).
        """
        if not (source or path or text):
            raise ValueError("register_protocol needs a source, path, or text")
        key = name.upper()
        with self._lock:
            if key in self._specs and not replace:
                raise ValueError(
                    f"protocol {key!r} is already registered; "
                    "pass replace=True to override"
                )
            spec = ProtocolSpec(
                name=key, source=source, package=package or self.package,
                path=path, text=text, description=description,
                sender_built=tuple(sender_built),
                parser_backend=parser_backend,
            )
            self._specs[key] = spec
            self._corpora.pop(key, None)
            return spec

    def unregister_protocol(self, name: str) -> None:
        key = name.upper()
        with self._lock:
            self._specs.pop(key, None)
            self._corpora.pop(key, None)

    def protocols(self) -> list[str]:
        return list(self._specs)

    def sender_built(self, name: str) -> frozenset[str]:
        """The messages of ``name`` the probing sender constructs.

        Everything not in the set is built by the responding node.  This is
        registry metadata (one line per protocol at registration) rather
        than code: the generator's role policy consults it instead of
        hardcoding the ICMP message names.
        """
        return frozenset(self.spec(name).sender_built)

    def parser_backend_for(self, name: str) -> str:
        """The parser backend ``name``'s corpus is registered to prefer
        (the process default when unpinned or unregistered)."""
        try:
            return self.spec(name).parser_backend or DEFAULT_PARSER_BACKEND
        except KeyError:
            return DEFAULT_PARSER_BACKEND

    def spec(self, name: str) -> ProtocolSpec:
        key = name.upper()
        try:
            return self._specs[key]
        except KeyError:
            raise UnknownProtocolError(name, self.protocols()) from None

    # -- corpora ---------------------------------------------------------------
    def load_corpus(self, name: str) -> Corpus:
        """The parsed corpus for ``name``; parsed once, then memoized."""
        key = name.upper()
        with self._lock:
            corpus = self._corpora.get(key)
            if corpus is None:
                spec = self.spec(key)
                corpus = corpus_from_text(spec.read_text(), spec.name)
                self._corpora[key] = corpus
            return corpus

    def corpora(self) -> list[Corpus]:
        return [self.load_corpus(name) for name in self.protocols()]

    # -- NLP / CCG substrate ---------------------------------------------------
    def dictionary(self) -> TermDictionary:
        """The bundled term dictionary (shared instance; treat as read-only)."""
        with self._lock:
            if self._dictionary is None:
                self._dictionary = load_default_dictionary()
            return self._dictionary

    def chunker(self) -> NounPhraseChunker:
        """The default chunker, sharing the memoized dictionary."""
        with self._lock:
            if self._chunker is None:
                self._chunker = NounPhraseChunker(dictionary=self.dictionary())
            return self._chunker

    def lexicon(self, groups: tuple[str, ...] | None = None,
                include_overgen: bool = True) -> Lexicon:
        """The CCG lexicon for ``groups`` (default: every group), memoized."""
        key = (groups, include_overgen)
        with self._lock:
            lexicon = self._lexicons.get(key)
            if lexicon is None:
                if groups is None:
                    lexicon = build_lexicon(include_overgen=include_overgen)
                else:
                    lexicon = build_lexicon(groups, include_overgen=include_overgen)
                self._lexicons[key] = lexicon
            return lexicon

    def parser(self, groups: tuple[str, ...] | None = None,
               include_overgen: bool = True,
               backend: str | None = None) -> CCGChartParser:
        """A parser backend over the memoized lexicon, itself memoized.

        ``backend`` names a registered parser backend (None → the process
        default); each (groups, overgen, backend) combination is built
        once and shared — backends over the same lexicon share the
        memoized :class:`~repro.ccg.lexicon.Lexicon` instance.
        """
        backend = backend or DEFAULT_PARSER_BACKEND
        key = (groups, include_overgen, backend)
        with self._lock:
            parser = self._parsers.get(key)
            if parser is None:
                parser = create_parser(
                    backend, self.lexicon(groups, include_overgen)
                )
                self._parsers[key] = parser
            return parser

    def cache_store(self):
        """The shared on-disk :class:`~repro.cache.store.CacheStore`, or
        None when the registry has no cache directory configured.

        One store instance backs both promoted caches, so their stats and
        ``clear`` views agree; built lazily because most registries
        (tests, throwaway scripts) never touch disk."""
        if self.cache_dir is None:
            return None
        with self._lock:
            if self._cache_store is None:
                from ..cache.store import CacheStore

                self._cache_store = CacheStore(self.cache_dir)
            return self._cache_store

    def parse_cache(self) -> ParseCache:
        """The shared sentence-parse cache (see :class:`ParseCache`).

        Living here rather than on ``Sage`` means every engine built over
        this registry — strict and revised mode alike — reuses each other's
        parses: identical sentence text under the same lexicon/chunker
        fingerprint is parsed exactly once per process.  With a cache
        directory configured the cache is additionally disk-backed
        (:class:`~repro.cache.persistent.PersistentParseCache`): parses
        persist across processes and are shared with concurrent ones."""
        with self._lock:
            if self._parse_cache is not None:
                return self._parse_cache
        store = self.cache_store()
        with self._lock:
            if self._parse_cache is None:
                if store is not None:
                    from ..cache.persistent import PersistentParseCache

                    self._parse_cache = PersistentParseCache(store)
                else:
                    self._parse_cache = ParseCache()
            return self._parse_cache

    def winnow_cache(self) -> ParseCache:
        """The shared winnow-result cache (whole :class:`~repro.
        disambiguation.winnow.WinnowTrace` objects by content address).

        Keys are built by :meth:`~repro.core.stages.WinnowStage.cache_key`
        as ``(suite fingerprint, grammar substrate fingerprint, field,
        sentence, LF-set digest)`` — deliberately backend-free, so engines
        on different parser backends over the same grammar serve each
        other's winnow results.  With a cache directory configured the
        cache is disk-backed (:class:`~repro.cache.persistent.
        PersistentWinnowCache`): a warm-booting process replays every
        previously winnowed sentence without running a single check."""
        with self._lock:
            if self._winnow_cache is not None:
                return self._winnow_cache
        store = self.cache_store()
        with self._lock:
            if self._winnow_cache is None:
                if store is not None:
                    from ..cache.persistent import PersistentWinnowCache

                    self._winnow_cache = PersistentWinnowCache(store)
                else:
                    self._winnow_cache = ParseCache()
            return self._winnow_cache

    def compiled_cache(self) -> CompiledProgramCache:
        """The shared compiled-program cache (see :class:`CompiledProgramCache`).

        Living here rather than on the harness means every consumer of
        generated code built over this registry — scenario adapters,
        benchmarks, repeated engine runs — compiles each distinct program
        once; repeats are a dictionary hit on the content hash.  With a
        cache directory configured, rendered sources additionally persist
        (:class:`~repro.cache.persistent.PersistentCompiledCache`), so a
        cold process skips the render step."""
        with self._lock:
            if self._compiled_cache is not None:
                return self._compiled_cache
        store = self.cache_store()
        with self._lock:
            if self._compiled_cache is None:
                if store is not None:
                    from ..cache.persistent import PersistentCompiledCache

                    self._compiled_cache = PersistentCompiledCache(store)
                else:
                    self._compiled_cache = CompiledProgramCache()
            return self._compiled_cache

    # -- rewrites and journaled decisions --------------------------------------
    REWRITES_FILENAME = "rewrites.json"

    def load_rewrites(self) -> list[Rewrite]:
        """The bundled rewrite record (Table 6 / §6.4), memoized.

        Empty when the registry was constructed with
        ``bundled_rewrites=False`` (journal-only operation)."""
        with self._lock:
            if self._rewrites is None:
                if not self.bundled_rewrites:
                    self._rewrites = []
                else:
                    raw = json.loads(
                        resources.files(self.package)
                        .joinpath(self.REWRITES_FILENAME)
                        .read_text()
                    )
                    self._rewrites = [Rewrite(**entry) for entry in raw]
            return self._rewrites

    def rewrites(self) -> dict[str, Rewrite]:
        """Whitespace-insensitive original-sentence → rewrite index.

        The bundled table overlaid with the attached journal's
        rewrite/annotate resolutions (journal wins per sentence)."""
        with self._lock:
            if self._rewrites_by_original is None:
                index = {
                    sentence_key(rewrite.original): rewrite
                    for rewrite in self.load_rewrites()
                }
                if self._journal is not None:
                    index.update(self._journal.rewrites())
                self._rewrites_by_original = index
            return self._rewrites_by_original

    def attach_journal(self, journal) -> None:
        """Attach (or with ``None`` detach) a decision journal.

        ``journal`` is any object with ``rewrites()`` and ``selections()``
        views — in practice a :class:`~repro.disambiguation.resolution.
        DecisionJournal`.  Later :meth:`rewrites`/:meth:`selections` calls
        reflect it; engines built earlier pick it up via
        ``SageEngine.refresh_decisions``.
        """
        with self._lock:
            self._journal = journal
            self._rewrites_by_original = None

    @property
    def journal(self):
        """The attached decision journal, or None."""
        return self._journal

    def apply_resolution(self, resolution) -> None:
        """Record one resolution into the attached journal and refresh.

        Attaches a fresh in-memory journal when none is bound yet, so
        callers can start resolving without ceremony.
        """
        with self._lock:
            if self._journal is None:
                from ..disambiguation.resolution import DecisionJournal

                self._journal = DecisionJournal()
            self._journal.record(resolution)
            self._rewrites_by_original = None

    def selections(self) -> dict[str, str]:
        """Journaled force-select decisions (sentence key → LF signature)."""
        with self._lock:
            if self._journal is None:
                return {}
            return self._journal.selections()

    # -- cache control ---------------------------------------------------------
    def invalidate(self, name: str | None = None) -> None:
        """Drop this registry's cached artifacts: one corpus, or everything.

        ``invalidate("ICMP")`` drops just that corpus; ``invalidate()`` also
        clears the dictionary, lexicons, parsers, chunker, and rewrites (the
        registrations themselves survive).  Only this instance's caches are
        touched — after editing ``terms.txt`` also call
        :func:`repro.nlp.terms.load_default_dictionary` with
        ``refresh=True`` to re-read the process-wide dictionary.
        """
        with self._lock:
            if name is not None:
                key = name.upper()
                self.spec(key)  # raise on unknown names
                self._corpora.pop(key, None)
                return
            self._corpora.clear()
            self._lexicons.clear()
            self._parsers.clear()
            self._dictionary = None
            self._chunker = None
            self._rewrites = None
            self._rewrites_by_original = None
            if self._parse_cache is not None:
                self._parse_cache.clear()
            if self._winnow_cache is not None:
                self._winnow_cache.clear()
            if self._compiled_cache is not None:
                self._compiled_cache.clear()

    def clear(self) -> None:
        """Alias for full invalidation."""
        self.invalidate()

    def reset_locks_after_fork(self) -> None:
        """Replace this registry's locks (and its caches') with fresh ones.

        Fork can land while another thread of the parent holds a lock; the
        child inherits it permanently held.  Single-threaded fork workers
        call this once at startup.  Living here keeps the reset in sync
        with every lock the registry owns.
        """
        self._lock = threading.RLock()
        if self._parse_cache is not None:
            self._parse_cache._lock = threading.Lock()
        if self._winnow_cache is not None:
            self._winnow_cache._lock = threading.Lock()
        if self._compiled_cache is not None:
            self._compiled_cache._lock = threading.Lock()
        if self._cache_store is not None:
            self._cache_store.reset_lock_after_fork()


# -- the default registry ------------------------------------------------------

_default_registry: ProtocolRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> ProtocolRegistry:
    """The process-wide registry holding the four bundled protocols."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = ProtocolRegistry()
        return _default_registry


def register_protocol(name: str, source: str = "", **kwargs) -> ProtocolSpec:
    """Register a protocol on the default registry (see the method)."""
    return default_registry().register_protocol(name, source, **kwargs)


def load_corpus(name: str) -> Corpus:
    """Load (or fetch the cached) corpus for ``name`` from the default registry."""
    return default_registry().load_corpus(name)
