"""Execution of SAGE-generated code against the static framework.

The Python emitter renders builder functions over a ``ctx`` object; this
module provides that object (:class:`ExecutionContext`), compiles generated
source (:func:`load_functions`), and adapts the result to the simulator's
:class:`~repro.netsim.icmp_impl.ICMPImplementation` interface
(:class:`GeneratedICMP`) so generated code can replace the reference
implementation in any scenario — the paper's §6.2 integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..framework import icmp
from ..framework.checksum import internet_checksum
from ..framework.ip import PROTO_ICMP, IPv4Header, make_ip_packet
from ..framework.netdev import Clock
from ..netsim.icmp_impl import ICMPImplementation


def load_functions(python_source: str) -> dict[str, object]:
    """Compile generated Python source; returns the defined functions."""
    namespace: dict[str, object] = {}
    exec(compile(python_source, "<sage-generated>", "exec"), namespace)
    return {
        name: value
        for name, value in namespace.items()
        if callable(value) and not name.startswith("__")
    }


@dataclass
class ExecutionContext:
    """The ``ctx`` object generated builders operate on.

    IP fields start as the *request's* addresses — the unmodified-datagram
    view the RFC prose assumes ("the source and destination addresses are
    simply reversed").  ``finish`` applies the OS egress rule: a source
    address the responder does not own is replaced by the responder's
    interface address (error messages originate at the router).
    """

    request_ip: IPv4Header
    responder_address: int
    params: dict[str, int] = dataclass_field(default_factory=dict)
    clock: Clock = dataclass_field(default_factory=Clock)
    ip_fields: dict[str, int] = dataclass_field(default_factory=dict)
    icmp_fields: dict[str, int] = dataclass_field(default_factory=dict)
    payload: bytes = b""
    checksum_requested: bool = False
    checksum_start: str = "type"
    discarded_reason: str | None = None

    def __post_init__(self) -> None:
        self.ip_fields = {
            "src": self.request_ip.src,
            "dst": self.request_ip.dst,
            "ttl": 64,
            "total_length": self.request_ip.total_length,
        }
        self.icmp_fields = {}
        try:
            self._request_icmp = icmp.ICMPHeader.unpack(self.request_ip.data)
        except ValueError:
            self._request_icmp = None
        try:
            self._request_timestamp = icmp.ICMPTimestampHeader.unpack(
                self.request_ip.data
            )
        except ValueError:
            self._request_timestamp = None

    # -- ops API (what the Python emitter calls) ------------------------------
    def set_field(self, protocol: str, name: str, value: int) -> None:
        if protocol == "ip":
            self.ip_fields[name] = value
        else:
            self.icmp_fields[name] = value

    def get_field(self, protocol: str, name: str) -> int:
        if protocol == "ip":
            return self.ip_fields.get(name, 0)
        return self.icmp_fields.get(name, self.request_field(protocol, name))

    def swap_fields(self, protocol_a: str, field_a: str,
                    protocol_b: str, field_b: str) -> None:
        a_value = self.get_field(protocol_a, field_a)
        b_value = self.get_field(protocol_b, field_b)
        self.set_field(protocol_a, field_a, b_value)
        self.set_field(protocol_b, field_b, a_value)

    def request_field(self, protocol: str, name: str) -> int:
        if protocol == "ip":
            return getattr(self.request_ip, name, 0)
        if name in ("identifier", "sequence_number") and self._request_icmp:
            if name == "identifier":
                return self._request_icmp.identifier
            return self._request_icmp.sequence
        if name.endswith("_timestamp") and self._request_timestamp:
            short = name.removesuffix("_timestamp")
            return getattr(self._request_timestamp, short, 0)
        if self._request_icmp is not None:
            return getattr(self._request_icmp, name, 0)
        return 0

    def param(self, name: str) -> int:
        if name == "current_time":
            return self.clock.now_ms()
        return self.params.get(name, 0)

    def clock_ms(self) -> int:
        return self.clock.now_ms()

    def copy_data(self) -> None:
        if self._request_timestamp is not None and len(self.request_ip.data) == 20:
            self.payload = b""  # timestamp messages carry no data
        elif self._request_icmp is not None:
            self.payload = self._request_icmp.payload

    def quote_datagram(self) -> None:
        self.payload = icmp.quoted_datagram(self.request_ip)

    def compute_checksum(self, protocol: str, name: str, start: str = "type") -> None:
        if protocol == "icmp":
            self.checksum_requested = True
            self.checksum_start = start
        # The IP header checksum is recomputed by the IP layer at finish().

    def pad_for_checksum(self) -> None:
        """Odd-length coverage is padded inside the checksum routine."""

    def discard(self, reason: str = "") -> None:
        self.discarded_reason = reason or "discarded"

    # -- finalization ------------------------------------------------------------
    def _is_timestamp_message(self) -> bool:
        return any(name.endswith("_timestamp") for name in self.icmp_fields)

    def build_icmp(self) -> bytes:
        """Assemble the ICMP message bytes from the accumulated fields."""
        if self._is_timestamp_message():
            header = icmp.ICMPTimestampHeader(
                type=self.icmp_fields.get("type", 0),
                code=self.icmp_fields.get("code", 0),
                identifier=self.icmp_fields.get("identifier", 0),
                sequence=self.icmp_fields.get("sequence_number", 0),
                originate=self.icmp_fields.get("originate_timestamp", 0),
                receive=self.icmp_fields.get("receive_timestamp", 0),
                transmit=self.icmp_fields.get("transmit_timestamp", 0),
            )
        else:
            header = icmp.ICMPHeader(
                type=self.icmp_fields.get("type", 0),
                code=self.icmp_fields.get("code", 0),
                payload=self.payload,
            )
            if "identifier" in self.icmp_fields or "sequence_number" in self.icmp_fields:
                header.identifier = self.icmp_fields.get("identifier", 0)
                header.sequence = self.icmp_fields.get("sequence_number", 0)
            elif "gateway_internet_address" in self.icmp_fields:
                header.gateway = self.icmp_fields["gateway_internet_address"]
            elif "pointer" in self.icmp_fields:
                header.pointer = self.icmp_fields["pointer"]
        raw = bytearray(header.pack())
        if self.checksum_requested:
            raw[2:4] = (0).to_bytes(2, "big")
            checksum = internet_checksum(bytes(raw))
            raw[2:4] = checksum.to_bytes(2, "big")
        return bytes(raw)

    def finish(self) -> bytes | None:
        """The complete IP datagram, or None when the code discarded it."""
        if self.discarded_reason is not None:
            return None
        source = self.ip_fields.get("src", self.responder_address)
        # OS egress rule: never emit a source address we do not own.
        if source == self.request_ip.src and source != self.responder_address:
            source = self.responder_address
        packet = make_ip_packet(
            src=source,
            dst=self.ip_fields.get("dst", self.request_ip.src),
            protocol=PROTO_ICMP,
            data=self.build_icmp(),
            ttl=self.ip_fields.get("ttl", 64),
        )
        return packet.pack()


class GeneratedICMP(ICMPImplementation):
    """Adapter: generated builder functions behind the simulator interface.

    Incoming-request validation (checksum verification, type dispatch) is
    kernel behaviour provided by the framework, mirroring the paper's static
    framework; the *construction* of every reply is the generated code.
    """

    def __init__(self, functions: dict[str, object], clock: Clock | None = None,
                 params: dict[str, int] | None = None) -> None:
        self.functions = functions
        self.clock = clock or Clock()
        self.params = params or {}

    @classmethod
    def from_source(cls, python_source: str, clock: Clock | None = None,
                    params: dict[str, int] | None = None) -> "GeneratedICMP":
        return cls(load_functions(python_source), clock=clock, params=params)

    # -- plumbing ------------------------------------------------------------
    def _run(self, function_name: str, request: IPv4Header,
             responder_address: int, **params: int) -> bytes | None:
        function = self.functions.get(function_name)
        if function is None:
            return None
        merged = dict(self.params)
        merged.update(params)
        context = ExecutionContext(
            request_ip=request,
            responder_address=responder_address,
            params=merged,
            clock=self.clock,
        )
        result = function(context)
        return result.finish() if result is not None else None

    @staticmethod
    def _validated(request: IPv4Header, expected_type: int) -> bool:
        try:
            message = icmp.ICMPHeader.unpack(request.data)
        except ValueError:
            return False
        return message.type == expected_type and message.checksum_ok()

    # -- ICMPImplementation interface ---------------------------------------
    def echo_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        if not self._validated(request, icmp.ECHO):
            return None
        return self._run("icmp_echo_reply_receiver", request, responder_address)

    def destination_unreachable(self, original: IPv4Header, code: int,
                                responder_address: int) -> bytes | None:
        return self._run(
            "icmp_destination_unreachable_receiver", original,
            responder_address, code=code,
        )

    def time_exceeded(self, original: IPv4Header, responder_address: int) -> bytes | None:
        return self._run(
            "icmp_time_exceeded_receiver", original, responder_address, code=0
        )

    def parameter_problem(self, original: IPv4Header, pointer: int,
                          responder_address: int) -> bytes | None:
        return self._run(
            "icmp_parameter_problem_receiver", original, responder_address,
            error_octet=pointer,
        )

    def source_quench(self, original: IPv4Header, responder_address: int) -> bytes | None:
        return self._run("icmp_source_quench_receiver", original, responder_address)

    def redirect(self, original: IPv4Header, gateway: int,
                 responder_address: int) -> bytes | None:
        return self._run(
            "icmp_redirect_receiver", original, responder_address,
            gateway_address=gateway, code=1,
        )

    def timestamp_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        try:
            message = icmp.ICMPTimestampHeader.unpack(request.data)
        except ValueError:
            return None
        if message.type != icmp.TIMESTAMP or not message.checksum_ok():
            return None
        return self._run("icmp_timestamp_reply_receiver", request, responder_address)

    def info_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        if not self._validated(request, icmp.INFO_REQUEST):
            return None
        return self._run("icmp_information_reply_receiver", request, responder_address)
