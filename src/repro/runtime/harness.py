"""Execution of SAGE-generated code against the static framework.

The executable backends produce builder functions over a ``ctx`` object;
this module provides those objects (:class:`ExecutionContext` for ICMP,
:class:`IGMPExecutionContext` for IGMP — the state-runtime contexts live in
:mod:`repro.runtime.state_runtime`), compiles generated programs through
the shared compiled-program cache (:func:`load_functions`,
:func:`compile_unit`), and adapts the results to the simulator's
interfaces through the protocol-generic :class:`GeneratedImplementation`
family — the paper's §6.2 integration, generalized to every bundled
protocol (§6.3–§6.4):

* :class:`GeneratedICMP` — the `ICMPImplementation` boundary for
  routers/hosts (ping, traceroute, the Appendix A scenarios);
* :class:`GeneratedIGMP` — query/report construction for the
  commodity-switch experiment;
* :class:`~repro.runtime.state_runtime.GeneratedNTP` /
  :class:`~repro.runtime.state_runtime.GeneratedBFD` — the state-machine
  adapters (Table 11 dispatch, §6.8.6 reception).

Every adapter compiles through :func:`compile_unit`: programs are keyed on
their content SHA-1 (source hash for the exec backend, IR fingerprint for
the interpreter) in the registry's :class:`~repro.rfc.registry.
CompiledProgramCache`, so a repeated scenario pays a dictionary hit, not a
recompile.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dataclass_field

from ..codegen.emitters import PyEmitter
from ..framework import icmp
from ..framework.checksum import internet_checksum
from ..framework.igmp import ALL_HOSTS_GROUP, IGMPHeader
from ..framework.ip import PROTO_ICMP, PROTO_IGMP, IPv4Header, make_ip_packet
from ..framework.netdev import Clock
from ..netsim.icmp_impl import ICMPImplementation


def _resolve_cache(cache):
    """``True`` → the default registry's shared compiled-program cache."""
    if cache is True:
        from ..rfc.registry import default_registry

        return default_registry().compiled_cache()
    if cache is False:
        return None
    return cache


def load_functions(python_source: str, cache=None) -> dict[str, object]:
    """Compile generated Python source; returns the defined functions.

    With a ``cache`` (a :class:`~repro.rfc.registry.CompiledProgramCache`,
    or ``True`` for the default registry's), identical source compiles once
    per process — the key is the source SHA-1.
    """
    cache = _resolve_cache(cache)
    key = ("python-source", hashlib.sha1(python_source.encode()).hexdigest())
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    functions = PyEmitter.compile_source(python_source)
    if cache is not None:
        cache.put(key, functions)
    return functions


def compile_unit(unit, backend: str = "python", cache=None) -> dict[str, object]:
    """Compile an IR :class:`~repro.codegen.ir.Program` to callables.

    ``backend`` names any registered executable backend ("python" execs the
    rendering; "interp" walks the IR directly).  The cache key is
    ``(backend, IR fingerprint)``, so the same program compiled under two
    backends caches independently while a repeat under either is free.

    Compiled callables cannot outlive their process, but the *rendered
    source* can: a disk-backed cache (:class:`~repro.cache.persistent.
    PersistentCompiledCache`) persists the Python rendering under the same
    key, so a cold process skips the render and only re-pays the ``exec``.
    The in-memory cache's ``get_source``/``put_source`` are no-ops.
    """
    cache = _resolve_cache(cache)
    key = (backend, unit.fingerprint())
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
        if backend == "python":
            source = cache.get_source(key)
            if source is not None:
                functions = PyEmitter.compile_source(source)
                cache.put(key, functions)
                return functions
    functions = unit.compile(backend=backend)
    if cache is not None:
        cache.put(key, functions)
        if backend == "python":
            cache.put_source(key, unit.render_python())
    return functions


@dataclass
class ExecutionContext:
    """The ``ctx`` object generated builders operate on.

    IP fields start as the *request's* addresses — the unmodified-datagram
    view the RFC prose assumes ("the source and destination addresses are
    simply reversed").  ``finish`` applies the OS egress rule: a source
    address the responder does not own is replaced by the responder's
    interface address (error messages originate at the router).
    """

    request_ip: IPv4Header
    responder_address: int
    params: dict[str, int] = dataclass_field(default_factory=dict)
    clock: Clock = dataclass_field(default_factory=Clock)
    ip_fields: dict[str, int] = dataclass_field(default_factory=dict)
    icmp_fields: dict[str, int] = dataclass_field(default_factory=dict)
    payload: bytes = b""
    checksum_requested: bool = False
    checksum_start: str = "type"
    discarded_reason: str | None = None

    def __post_init__(self) -> None:
        self.ip_fields = {
            "src": self.request_ip.src,
            "dst": self.request_ip.dst,
            "ttl": 64,
            "total_length": self.request_ip.total_length,
        }
        self.icmp_fields = {}
        try:
            self._request_icmp = icmp.ICMPHeader.unpack(self.request_ip.data)
        except ValueError:
            self._request_icmp = None
        try:
            self._request_timestamp = icmp.ICMPTimestampHeader.unpack(
                self.request_ip.data
            )
        except ValueError:
            self._request_timestamp = None

    # -- ops API (what the Python emitter calls) ------------------------------
    def set_field(self, protocol: str, name: str, value: int) -> None:
        if protocol == "ip":
            self.ip_fields[name] = value
        else:
            self.icmp_fields[name] = value

    def get_field(self, protocol: str, name: str) -> int:
        if protocol == "ip":
            return self.ip_fields.get(name, 0)
        return self.icmp_fields.get(name, self.request_field(protocol, name))

    def swap_fields(self, protocol_a: str, field_a: str,
                    protocol_b: str, field_b: str) -> None:
        a_value = self.get_field(protocol_a, field_a)
        b_value = self.get_field(protocol_b, field_b)
        self.set_field(protocol_a, field_a, b_value)
        self.set_field(protocol_b, field_b, a_value)

    def request_field(self, protocol: str, name: str) -> int:
        if protocol == "ip":
            return getattr(self.request_ip, name, 0)
        if name in ("identifier", "sequence_number") and self._request_icmp:
            if name == "identifier":
                return self._request_icmp.identifier
            return self._request_icmp.sequence
        if name.endswith("_timestamp") and self._request_timestamp:
            short = name.removesuffix("_timestamp")
            return getattr(self._request_timestamp, short, 0)
        if self._request_icmp is not None:
            return getattr(self._request_icmp, name, 0)
        return 0

    def param(self, name: str) -> int:
        if name == "current_time":
            return self.clock.now_ms()
        return self.params.get(name, 0)

    def clock_ms(self) -> int:
        return self.clock.now_ms()

    def copy_data(self) -> None:
        if self._request_timestamp is not None and len(self.request_ip.data) == 20:
            self.payload = b""  # timestamp messages carry no data
        elif self._request_icmp is not None:
            self.payload = self._request_icmp.payload

    def quote_datagram(self) -> None:
        self.payload = icmp.quoted_datagram(self.request_ip)

    def compute_checksum(self, protocol: str, name: str, start: str = "type") -> None:
        if protocol == "icmp":
            self.checksum_requested = True
            self.checksum_start = start
        # The IP header checksum is recomputed by the IP layer at finish().

    def pad_for_checksum(self) -> None:
        """Odd-length coverage is padded inside the checksum routine."""

    def discard(self, reason: str = "") -> None:
        self.discarded_reason = reason or "discarded"

    # -- finalization ------------------------------------------------------------
    def _is_timestamp_message(self) -> bool:
        return any(name.endswith("_timestamp") for name in self.icmp_fields)

    def build_icmp(self) -> bytes:
        """Assemble the ICMP message bytes from the accumulated fields."""
        if self._is_timestamp_message():
            header = icmp.ICMPTimestampHeader(
                type=self.icmp_fields.get("type", 0),
                code=self.icmp_fields.get("code", 0),
                identifier=self.icmp_fields.get("identifier", 0),
                sequence=self.icmp_fields.get("sequence_number", 0),
                originate=self.icmp_fields.get("originate_timestamp", 0),
                receive=self.icmp_fields.get("receive_timestamp", 0),
                transmit=self.icmp_fields.get("transmit_timestamp", 0),
            )
        else:
            header = icmp.ICMPHeader(
                type=self.icmp_fields.get("type", 0),
                code=self.icmp_fields.get("code", 0),
                payload=self.payload,
            )
            if "identifier" in self.icmp_fields or "sequence_number" in self.icmp_fields:
                header.identifier = self.icmp_fields.get("identifier", 0)
                header.sequence = self.icmp_fields.get("sequence_number", 0)
            elif "gateway_internet_address" in self.icmp_fields:
                header.gateway = self.icmp_fields["gateway_internet_address"]
            elif "pointer" in self.icmp_fields:
                header.pointer = self.icmp_fields["pointer"]
        raw = bytearray(header.pack())
        if self.checksum_requested:
            raw[2:4] = (0).to_bytes(2, "big")
            checksum = internet_checksum(bytes(raw))
            raw[2:4] = checksum.to_bytes(2, "big")
        return bytes(raw)

    def finish(self) -> bytes | None:
        """The complete IP datagram, or None when the code discarded it."""
        if self.discarded_reason is not None:
            return None
        source = self.ip_fields.get("src", self.responder_address)
        # OS egress rule: never emit a source address we do not own.
        if source == self.request_ip.src and source != self.responder_address:
            source = self.responder_address
        packet = make_ip_packet(
            src=source,
            dst=self.ip_fields.get("dst", self.request_ip.src),
            protocol=PROTO_ICMP,
            data=self.build_icmp(),
            ttl=self.ip_fields.get("ttl", 64),
        )
        return packet.pack()


class GeneratedImplementation:
    """Base of the adapter family: generated builders behind a simulator
    interface.

    Construction is uniform across protocols: a dictionary of compiled
    builder functions (from any executable backend) plus the scenario
    substrate (clock, parameters).  Subclasses add the protocol-specific
    surface the simulator calls (`ICMPImplementation` methods, IGMP message
    construction, the BFD receive path, the NTP timeout predicate).
    """

    #: The registered protocol this adapter serves (informational).
    protocol = ""

    def __init__(self, functions: dict[str, object], clock: Clock | None = None,
                 params: dict[str, int] | None = None) -> None:
        self.functions = functions
        self.clock = clock or Clock()
        self.params = params or {}

    @classmethod
    def from_source(cls, python_source: str, clock: Clock | None = None,
                    params: dict[str, int] | None = None, cache=True,
                    **kwargs):
        """Build from rendered Python source (exec backend, cached)."""
        return cls(load_functions(python_source, cache=cache),
                   clock=clock, params=params, **kwargs)

    @classmethod
    def from_unit(cls, unit, backend: str = "python",
                  clock: Clock | None = None,
                  params: dict[str, int] | None = None, cache=True,
                  **kwargs):
        """Build from an IR Program via any executable backend, cached."""
        return cls(compile_unit(unit, backend=backend, cache=cache),
                   clock=clock, params=params, **kwargs)

    @classmethod
    def from_run(cls, run, **kwargs):
        """Build from a :class:`~repro.core.engine.SageRun`."""
        return cls.from_unit(run.code_unit, **kwargs)

    @classmethod
    def from_artifact(cls, artifact, backend: str | None = None, **kwargs):
        """Build from a serialized :class:`~repro.api.contracts.
        GeneratedArtifact` (the object, or its JSON envelope text).

        The artifact's embedded IR is rebuilt with its content SHA-1
        verified (:class:`~repro.codegen.ir.FingerprintMismatch` on drift),
        then compiled under ``backend`` — default: the artifact's own
        backend when executable, else "python".  This is the consume side
        of the service layer's artifact endpoint: a payload fetched from a
        remote ``SageService`` drops straight onto the simulator.
        """
        from ..codegen.ir import _backend as resolve_backend

        if isinstance(artifact, str):
            from ..api.contracts import from_json

            artifact = from_json(artifact)
        program = artifact.to_program()
        if backend is None:
            backend = artifact.backend
            if not getattr(resolve_backend(backend), "executable", False):
                backend = "python"
        return cls.from_unit(program, backend=backend, **kwargs)

    def builder(self, name: str):
        """The compiled builder function called ``name``, or None."""
        return self.functions.get(name)


class GeneratedICMP(GeneratedImplementation, ICMPImplementation):
    """Adapter: generated builder functions behind the simulator interface.

    Incoming-request validation (checksum verification, type dispatch) is
    kernel behaviour provided by the framework, mirroring the paper's static
    framework; the *construction* of every reply is the generated code.
    """

    protocol = "ICMP"

    # -- plumbing ------------------------------------------------------------
    def _run(self, function_name: str, request: IPv4Header,
             responder_address: int, **params: int) -> bytes | None:
        function = self.builder(function_name)
        if function is None:
            return None
        merged = dict(self.params)
        merged.update(params)
        context = ExecutionContext(
            request_ip=request,
            responder_address=responder_address,
            params=merged,
            clock=self.clock,
        )
        result = function(context)
        return result.finish() if result is not None else None

    @staticmethod
    def _validated(request: IPv4Header, expected_type: int) -> bool:
        try:
            message = icmp.ICMPHeader.unpack(request.data)
        except ValueError:
            return False
        return message.type == expected_type and message.checksum_ok()

    # -- ICMPImplementation interface ---------------------------------------
    def echo_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        if not self._validated(request, icmp.ECHO):
            return None
        return self._run("icmp_echo_reply_receiver", request, responder_address)

    def destination_unreachable(self, original: IPv4Header, code: int,
                                responder_address: int) -> bytes | None:
        return self._run(
            "icmp_destination_unreachable_receiver", original,
            responder_address, code=code,
        )

    def time_exceeded(self, original: IPv4Header, responder_address: int) -> bytes | None:
        return self._run(
            "icmp_time_exceeded_receiver", original, responder_address, code=0
        )

    def parameter_problem(self, original: IPv4Header, pointer: int,
                          responder_address: int) -> bytes | None:
        return self._run(
            "icmp_parameter_problem_receiver", original, responder_address,
            error_octet=pointer,
        )

    def source_quench(self, original: IPv4Header, responder_address: int) -> bytes | None:
        return self._run("icmp_source_quench_receiver", original, responder_address)

    def redirect(self, original: IPv4Header, gateway: int,
                 responder_address: int) -> bytes | None:
        return self._run(
            "icmp_redirect_receiver", original, responder_address,
            gateway_address=gateway, code=1,
        )

    def timestamp_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        try:
            message = icmp.ICMPTimestampHeader.unpack(request.data)
        except ValueError:
            return None
        if message.type != icmp.TIMESTAMP or not message.checksum_ok():
            return None
        return self._run("icmp_timestamp_reply_receiver", request, responder_address)

    def info_reply(self, request: IPv4Header, responder_address: int) -> bytes | None:
        if not self._validated(request, icmp.INFO_REQUEST):
            return None
        return self._run("icmp_information_reply_receiver", request, responder_address)


@dataclass
class IGMPExecutionContext:
    """The ``ctx`` object generated IGMP builders operate on (§6.3).

    IGMP builders only construct messages (there is no request being
    replied to), so the context is a field accumulator plus the @Send
    routing record — the adapter reads ``sends`` to learn where the
    generated code wants the message addressed ("queries are sent to the
    all-hosts group").
    """

    params: dict[str, int] = dataclass_field(default_factory=dict)
    fields: dict[str, int] = dataclass_field(default_factory=dict)
    sends: list[tuple[str, str]] = dataclass_field(default_factory=list)
    checksum_requested: bool = False
    discarded_reason: str | None = None

    # -- ops API ---------------------------------------------------------------
    def set_field(self, protocol: str, name: str, value: int) -> None:
        self.fields[name] = value

    def get_field(self, protocol: str, name: str) -> int:
        return self.fields.get(name, 0)

    def param(self, name: str) -> int:
        return self.params.get(name, 0)

    def send(self, message: str, destination: str = "") -> None:
        self.sends.append((message, destination))

    def compute_checksum(self, protocol: str, name: str, start: str = "type") -> None:
        self.checksum_requested = True

    def pad_for_checksum(self) -> None:
        """Odd-length coverage is padded inside the checksum routine."""

    def discard(self, reason: str = "") -> None:
        self.discarded_reason = reason or "discarded"

    # -- finalization ----------------------------------------------------------
    def build_igmp(self) -> IGMPHeader:
        """The assembled message; the checksum is finalized by the framework
        codec (the kernel-egress rule, as with the IP checksum for ICMP)."""
        return IGMPHeader(
            version=self.fields.get("version", 1),
            type=self.fields.get("type", 0),
            unused=self.fields.get("unused", 0),
            group_address=self.fields.get("group_address", 0),
        ).finalize()

    def sent_to_all_hosts(self) -> bool:
        """Did the generated code route a send to the all-hosts group?"""
        return any(destination == "all_hosts_group"
                   for _message, destination in self.sends)


class GeneratedIGMP(GeneratedImplementation):
    """Adapter: generated IGMP builders construct query/report datagrams.

    The §6.3 experiment: "our generated code sends a host membership query
    to a commodity switch".  ``query_datagram`` runs the generated query
    builder and wraps the result in IP addressed per the builder's own
    @Send routing (the all-hosts group), TTL 1 as RFC 1112 requires.
    """

    protocol = "IGMP"
    QUERY_BUILDER = "igmp_host_membership_query_receiver"
    REPORT_BUILDER = "igmp_host_membership_report_receiver"

    def _build(self, function_name: str,
               **params: int) -> IGMPExecutionContext | None:
        function = self.builder(function_name)
        if function is None:
            return None
        merged = dict(self.params)
        merged.update(params)
        context = IGMPExecutionContext(params=merged)
        result = function(context)
        return result if result is not None else context

    def membership_query(self) -> IGMPHeader | None:
        context = self._build(self.QUERY_BUILDER, group_address=0)
        return context.build_igmp() if context is not None else None

    def membership_report(self, group_address: int) -> IGMPHeader | None:
        context = self._build(self.REPORT_BUILDER, group_address=group_address)
        return context.build_igmp() if context is not None else None

    def query_datagram(self, source_address: int,
                       destination: int | None = None) -> bytes | None:
        """A complete IP datagram carrying the generated query."""
        context = self._build(self.QUERY_BUILDER, group_address=0)
        if context is None:
            return None
        if destination is None:
            # The generated @Send op names the destination group.
            destination = ALL_HOSTS_GROUP if context.sent_to_all_hosts() else 0
        return make_ip_packet(
            src=source_address, dst=destination, protocol=PROTO_IGMP,
            data=context.build_igmp().pack(), ttl=1,
        ).pack()

    def report_datagram(self, source_address: int, group_address: int) -> bytes | None:
        """A complete IP datagram carrying a generated report (reports are
        addressed to the group being reported, TTL 1)."""
        context = self._build(self.REPORT_BUILDER, group_address=group_address)
        if context is None:
            return None
        return make_ip_packet(
            src=source_address, dst=group_address, protocol=PROTO_IGMP,
            data=context.build_igmp().pack(), ttl=1,
        ).pack()


def generated_implementation(protocol: str, unit, backend: str = "python",
                             **kwargs) -> GeneratedImplementation:
    """The family factory: the right adapter for ``protocol``, compiled from
    an IR program through the shared cache."""
    from .state_runtime import GeneratedBFD, GeneratedNTP

    adapters: dict[str, type[GeneratedImplementation]] = {
        "ICMP": GeneratedICMP,
        "IGMP": GeneratedIGMP,
        "NTP": GeneratedNTP,
        "BFD": GeneratedBFD,
    }
    try:
        adapter = adapters[protocol.upper()]
    except KeyError:
        raise KeyError(
            f"no generated-implementation adapter for protocol {protocol!r}: "
            f"known adapters are {', '.join(sorted(adapters))}"
        ) from None
    return adapter.from_unit(unit, backend=backend, **kwargs)
