"""Runtime for generated state-management code (BFD §6.8.6, NTP Table 11).

The BFD context executes generated reception code against real
:class:`~repro.framework.bfd.BFDStateVariables` and a received control
packet; the NTP context drives the Table 11 timeout dispatch against peer
variables.  Both let generated code replace the hand-written reference
transition functions, transition-for-transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..framework.bfd import STATE_NAMES, BFDControlHeader, BFDStateVariables
from ..framework.ntp import PeerVariables
from .harness import GeneratedImplementation


class StateValue(int):
    """An integer state value that also compares equal to its RFC name.

    Generated code mixes representations ("``== 'admindown'``" from prose,
    numeric assignments from value resolution); this type makes both work.
    """

    def __new__(cls, value: int, name: str = ""):
        instance = super().__new__(cls, value)
        instance._name = name.lower()
        return instance

    def __eq__(self, other):
        if isinstance(other, str):
            return self._name == other.lower()
        return int(self) == int(other)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return int.__hash__(self)


@dataclass
class BFDExecutionContext:
    """``ctx`` for generated BFD reception code."""

    state: BFDStateVariables
    packet: BFDControlHeader
    session_exists: bool = True
    discarded_reason: str | None = None
    transmission_ceased: bool = False
    session_selected: bool = False

    _STATEVAR_ATTRS = {
        "bfd.sessionstate": "SessionState",
        "bfd.remotestate": "RemoteSessionState",
        "bfd.remotesessionstate": "RemoteSessionState",
        "bfd.localdiscr": "LocalDiscr",
        "bfd.remotediscr": "RemoteDiscr",
        "bfd.localdiag": "LocalDiag",
        "bfd.remotedemandmode": "RemoteDemandMode",
        "bfd.demandmode": "DemandMode",
        "bfd.remoteminrxinterval": "RemoteMinRxInterval",
        "bfd.detectmult": "DetectMult",
        "bfd.authtype": "AuthType",
    }

    _STATE_VARS = {"bfd.sessionstate", "bfd.remotestate", "bfd.remotesessionstate"}

    def packet_field(self, name: str):
        value = getattr(self.packet, name, 0)
        if name == "state":
            return StateValue(value, STATE_NAMES.get(value, ""))
        return value

    def state_get(self, name: str):
        attr = self._STATEVAR_ATTRS.get(name.lower())
        if attr is None:
            return 0
        value = getattr(self.state, attr)
        if name.lower() in self._STATE_VARS:
            return StateValue(value, STATE_NAMES.get(value, ""))
        return value

    def state_set(self, name: str, value) -> None:
        attr = self._STATEVAR_ATTRS.get(name.lower())
        if attr is not None:
            setattr(self.state, attr, int(value))

    def select_session(self) -> None:
        self.session_selected = True

    def session_found(self) -> bool:
        return self.session_exists

    def discard(self, reason: str = "") -> None:
        self.discarded_reason = reason or "discarded"

    def cease_transmission(self) -> None:
        self.transmission_ceased = True

    def send(self, message: str, destination: str = "") -> None:
        self.transmission_ceased = False

    def finish(self):
        return self


class GeneratedBFD(GeneratedImplementation):
    """Run generated reception code as a BFD session's receive path."""

    protocol = "BFD"
    RECEPTION_BUILDER = "bfd_reception_of_bfd_control_packets_receiver"

    def __init__(self, functions: dict[str, object],
                 function_name: str = RECEPTION_BUILDER,
                 clock=None, params=None):
        super().__init__(functions, clock=clock, params=params)
        self.function = functions[function_name]

    def receive_control(self, state: BFDStateVariables, packet: BFDControlHeader,
                        session_exists: bool = True) -> BFDExecutionContext:
        context = BFDExecutionContext(
            state=state, packet=packet, session_exists=session_exists
        )
        self.function(context)
        return context


@dataclass
class NTPExecutionContext:
    """``ctx`` for the generated NTP timeout dispatch (Table 11).

    With ``execute=False`` the context only *records* the dispatch decision
    (``procedures_called``) without running procedures against the peer —
    the decision-only mode :class:`GeneratedNTP` uses as a netsim timeout
    predicate, where the peer driver itself performs the procedure.
    """

    peer: PeerVariables
    procedures_called: list[str] = dataclass_field(default_factory=list)
    execute: bool = True

    def variable(self, name: str) -> int:
        mapping = {
            "peer_timer": self.peer.timer,
            "timer_threshold_variable": self.peer.threshold,
            "timer_threshold": self.peer.threshold,
            "peer_timer_threshold": self.peer.threshold,
        }
        return mapping.get(name, 0)

    def mode_in(self, modes: tuple[str, ...]) -> bool:
        # RFC 1059 clarifies the "client mode and symmetric mode"
        # conjunction is an OR over association modes.
        checks = {
            "client_mode": self.peer.in_client_mode(),
            "symmetric_mode": self.peer.in_symmetric_mode(),
        }
        return any(checks.get(mode, False) for mode in modes)

    def call_procedure(self, name: str) -> None:
        self.procedures_called.append(name)
        if self.execute and name == "timeout_procedure":
            self.peer.timeout_procedure()

    def finish(self):
        return self


class GeneratedNTPTimeout:
    """The Table 11 dispatch as a netsim timeout predicate."""

    def __init__(self, functions: dict[str, object],
                 function_name: str = "ntp_peer_variables_and_timeout_receiver"):
        self.function = functions[function_name]

    def __call__(self, peer: PeerVariables) -> bool:
        """Timeout-predicate interface for :class:`~repro.netsim.NTPPeer`.

        Runs the generated dispatch; reports True when the generated code
        invoked the timeout procedure (which itself resets the timer).
        """
        context = NTPExecutionContext(peer=peer)
        self.function(context)
        if "timeout_procedure" in context.procedures_called:
            # The procedure already ran (and emitted); tell the peer driver
            # not to double-fire.
            peer.timeouts_fired -= 0
            return False
        return False

    def run(self, peer: PeerVariables) -> NTPExecutionContext:
        context = NTPExecutionContext(peer=peer)
        self.function(context)
        return context


class GeneratedNTP(GeneratedImplementation):
    """Adapter: the generated Table 11 dispatch as an NTP peer's timeout
    policy.

    ``timeout_predicate`` has the :class:`~repro.netsim.ntp_peer.NTPPeer`
    predicate contract — the generated code *decides* (decision-only
    context), the peer driver performs the timeout procedure and the
    NTP-in-UDP encapsulation, so the procedure never double-fires.
    """

    protocol = "NTP"
    DISPATCH_BUILDER = "ntp_peer_variables_and_timeout_receiver"

    def timeout_predicate(self, peer: PeerVariables) -> bool:
        function = self.builder(self.DISPATCH_BUILDER)
        if function is None:
            return False
        context = NTPExecutionContext(peer=peer, execute=False)
        function(context)
        return "timeout_procedure" in context.procedures_called

    def run(self, peer: PeerVariables) -> NTPExecutionContext:
        """The dispatch with procedures executed (the historical surface)."""
        function = self.builder(self.DISPATCH_BUILDER)
        if function is None:
            raise KeyError(
                f"compiled unit has no {self.DISPATCH_BUILDER!r} builder"
            )
        context = NTPExecutionContext(peer=peer)
        function(context)
        return context
