"""Runtime for SAGE-generated code: compilation, execution, integration."""

from .harness import (
    ExecutionContext,
    GeneratedICMP,
    GeneratedIGMP,
    GeneratedImplementation,
    IGMPExecutionContext,
    compile_unit,
    generated_implementation,
    load_functions,
)
from .state_runtime import (
    BFDExecutionContext,
    GeneratedBFD,
    GeneratedNTP,
    GeneratedNTPTimeout,
    NTPExecutionContext,
    StateValue,
)

__all__ = [
    "BFDExecutionContext",
    "ExecutionContext",
    "GeneratedBFD",
    "GeneratedICMP",
    "GeneratedIGMP",
    "GeneratedImplementation",
    "GeneratedNTP",
    "GeneratedNTPTimeout",
    "IGMPExecutionContext",
    "NTPExecutionContext",
    "StateValue",
    "compile_unit",
    "generated_implementation",
    "load_functions",
]
