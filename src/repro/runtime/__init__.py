"""Runtime for SAGE-generated code: compilation, execution, integration."""

from .harness import ExecutionContext, GeneratedICMP, load_functions
from .state_runtime import (
    BFDExecutionContext,
    GeneratedBFD,
    GeneratedNTPTimeout,
    NTPExecutionContext,
    StateValue,
)

__all__ = [
    "BFDExecutionContext",
    "ExecutionContext",
    "GeneratedBFD",
    "GeneratedICMP",
    "GeneratedNTPTimeout",
    "NTPExecutionContext",
    "StateValue",
    "load_functions",
]
