"""The asyncio HTTP/1.1 front end over the serving worker pool.

Stdlib only: :func:`asyncio.start_server` streams plus hand-rolled
request framing (request line, headers, ``Content-Length`` bodies,
keep-alive).  The event loop never runs pipeline work — every service
request is handed to the :class:`~repro.server.pool.WorkerPool` and
awaited under a deadline, so ``/healthz`` answers even while every
worker is busy.

Routes::

    GET  /healthz                         liveness + uptime
    GET  /stats                           server counters + pool + caches
    POST /v1/process                      ProcessRequest → ProcessResponse
    POST /v1/sweep                        SweepRequest → SweepResponse
    GET  /v1/parse/{PROTOCOL}             parsing diagnostics (JSON only)
    GET  /v1/session/{PROTOCOL}/flagged   flagged-sentence reports (JSON only)
    GET  /v1/session/{PROTOCOL}/pending   unresolved flagged reports

Content negotiation: a ``Content-Type: application/x-repro-bin`` request
body is decoded as the ``schema:1b`` binary envelope; an ``Accept:
application/x-repro-bin`` header gets the response in the same envelope.
Everything else is ``schema:1`` JSON.  Error responses are always JSON.

Deadlines: the server default (``--deadline``) can be tightened or
loosened per request with an ``X-Repro-Deadline: <seconds>`` header; a
request that exceeds it gets a 504 carrying the structured
``deadline-exceeded`` payload.  The worker keeps running to completion
(a process pool cannot abandon a task mid-computation) — the deadline
bounds the *caller's* wait, and the warmed caches mean the retry is
cheap.
"""

from __future__ import annotations

import asyncio
import json
import time

from ..api.errors import ApiError, DeadlineExceeded
from .pool import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    ServiceConfig,
    WorkerPool,
)

#: Largest request body the server will read, in bytes.  Requests are
#: small (a protocol name and some flags); anything bigger is a client
#: bug or abuse, refused with 413 before allocation.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest request line + header block (readuntil limit).
MAX_HEADER_BYTES = 64 * 1024

_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 504: "Gateway Timeout",
}


def _error_body(code: str, message: str, **extra) -> bytes:
    payload = {"error": code, "message": message}
    payload.update(extra)
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


class _Request:
    __slots__ = ("method", "path", "query", "version", "headers", "body")

    def __init__(self, method, path, query, version, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def binary_in(self) -> bool:
        content_type = self.headers.get("content-type", "")
        return content_type.split(";")[0].strip() == BINARY_CONTENT_TYPE

    @property
    def binary_out(self) -> bool:
        return BINARY_CONTENT_TYPE in self.headers.get("accept", "")


def _parse_query(raw: str) -> dict:
    params: dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _sep, value = pair.partition("=")
        params[key] = value
    return params


class ReproServer:
    """One listening socket, one worker pool, standard counters."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 config: ServiceConfig | None = None,
                 workers: int | None = None, registry=None,
                 deadline_s: float = 60.0) -> None:
        self.host = host
        self.port = port  # 0 = ephemeral; updated once the socket binds
        self.deadline_s = deadline_s
        self.pool = WorkerPool(config, workers=workers, registry=registry)
        self.started_at = time.monotonic()
        self.requests_total = 0
        self.responses_by_status: dict[int, int] = {}
        self.timeouts_total = 0
        self.inflight = 0
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle --------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.close()

    def run(self) -> None:
        """Block serving until interrupted (the ``python -m repro serve``
        entry point)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:
            pass
        finally:
            self.pool.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling ----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                self.requests_total += 1
                self.inflight += 1
                try:
                    status, content_type, body = await self._dispatch(request)
                finally:
                    self.inflight -= 1
                keep_alive = request.keep_alive
                self._write_response(writer, status, content_type, body,
                                     keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter):
        """One framed request, None on clean EOF.  Framing errors answer
        inline (the request never reaches the pool) and close."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                self._refuse(writer, 400, "bad-request",
                             "truncated request head")
            return None
        except asyncio.LimitOverrunError:
            self._refuse(writer, 431, "bad-request",
                         f"request head exceeds {MAX_HEADER_BYTES} bytes")
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            self._refuse(writer, 400, "bad-request",
                         f"malformed request line: {lines[0][:80]!r}")
            return None
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            self._refuse(writer, 400, "bad-request",
                         "unreadable Content-Length")
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            self._refuse(writer, 413, "bad-request",
                         f"request body of {length} bytes exceeds the "
                         f"{MAX_BODY_BYTES}-byte cap")
            return None
        body = await reader.readexactly(length) if length else b""
        path, _sep, query = target.partition("?")
        return _Request(method, path, _parse_query(query), version, headers,
                        body)

    def _refuse(self, writer: asyncio.StreamWriter, status: int, code: str,
                message: str) -> None:
        self.requests_total += 1
        self._write_response(writer, status, JSON_CONTENT_TYPE,
                             _error_body(code, message), keep_alive=False)

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        content_type: str, body: bytes,
                        keep_alive: bool) -> None:
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "Server: repro-serve/1\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # -- routing ----------------------------------------------------------------
    async def _dispatch(self, request: _Request) -> tuple[int, str, bytes]:
        route = self._route(request)
        if isinstance(route, tuple) and route and route[0] == "error":
            _tag, status, code, message = route
            return status, JSON_CONTENT_TYPE, _error_body(code, message)
        endpoint, params = route
        if endpoint == "healthz":
            return 200, JSON_CONTENT_TYPE, json.dumps({
                "ok": True,
                "uptime_s": time.monotonic() - self.started_at,
            }).encode("utf-8")
        if endpoint == "stats":
            return await self._stats(request)
        return await self._run_in_pool(request, endpoint, params)

    def _route(self, request: _Request):
        """``(endpoint, params)`` or ``("error", status, code, message)``."""
        path = request.path.rstrip("/") or "/"
        method = request.method
        query = request.query
        if path == "/healthz":
            expected = "GET"
            if method != expected:
                return ("error", 405, "bad-request",
                        f"{path} only answers {expected}")
            return "healthz", {}
        if path == "/stats":
            if method != "GET":
                return ("error", 405, "bad-request", f"{path} only answers GET")
            return "stats", {}
        if path in ("/v1/process", "/v1/sweep"):
            if method != "POST":
                return ("error", 405, "bad-request",
                        f"{path} only answers POST")
            return path.rsplit("/", 1)[1], {}
        if path.startswith("/v1/parse/"):
            if method != "GET":
                return ("error", 405, "bad-request", f"{path} only answers GET")
            protocol = path[len("/v1/parse/"):]
            if not protocol or "/" in protocol:
                return ("error", 404, "not-found",
                        "expected /v1/parse/{protocol}")
            return "parse", {
                "protocol": protocol,
                "parser_backend": query.get("parser_backend",
                                            query.get("backend", "")),
                "mode": query.get("mode", "revised"),
            }
        if path.startswith("/v1/session/"):
            if method != "GET":
                return ("error", 405, "bad-request", f"{path} only answers GET")
            rest = path[len("/v1/session/"):]
            protocol, _sep, view = rest.partition("/")
            if not protocol or view not in ("flagged", "pending"):
                return ("error", 404, "not-found",
                        "expected /v1/session/{protocol}/flagged or .../pending")
            return "session", {
                "protocol": protocol,
                "pending": view == "pending",
                "mode": query.get("mode", "revised"),
            }
        return ("error", 404, "not-found", f"no route for {method} {path}")

    # -- pool dispatch ----------------------------------------------------------
    def _deadline_for(self, request: _Request) -> float:
        raw = request.headers.get("x-repro-deadline", "")
        if raw:
            try:
                value = float(raw)
                if value > 0:
                    return value
            except ValueError:
                pass  # an unreadable header falls back to the default
        return self.deadline_s

    async def _run_in_pool(self, request: _Request, endpoint: str,
                           params: dict) -> tuple[int, str, bytes]:
        deadline = self._deadline_for(request)
        future = self.pool.submit(
            endpoint, request.body,
            binary_in=request.binary_in, binary_out=request.binary_out,
            params=params,
        )
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future),
                                          timeout=deadline)
        except asyncio.TimeoutError:
            self.timeouts_total += 1
            error = DeadlineExceeded(deadline, endpoint=endpoint)
            return (error.http_status, JSON_CONTENT_TYPE,
                    json.dumps(error.to_dict(),
                               separators=(",", ":")).encode("utf-8"))
        except ApiError as exc:  # defensive: the pool renders these itself
            return (exc.http_status, JSON_CONTENT_TYPE,
                    json.dumps(exc.to_dict(),
                               separators=(",", ":")).encode("utf-8"))

    async def _stats(self, request: _Request) -> tuple[int, str, bytes]:
        server = {
            "uptime_s": time.monotonic() - self.started_at,
            "requests_total": self.requests_total,
            "responses_by_status": {str(code): count for code, count
                                    in sorted(self.responses_by_status.items())},
            "timeouts_total": self.timeouts_total,
            "inflight": self.inflight,
        }
        deadline = self._deadline_for(request)
        try:
            service = await asyncio.wait_for(
                asyncio.to_thread(self.pool.collect_stats,
                                  min(deadline, 15.0)),
                timeout=deadline,
            )
        except asyncio.TimeoutError:
            self.timeouts_total += 1
            error = DeadlineExceeded(deadline, endpoint="stats")
            return (error.http_status, JSON_CONTENT_TYPE,
                    json.dumps(error.to_dict(),
                               separators=(",", ":")).encode("utf-8"))
        payload = {
            "schema": 1, "kind": "server_stats",
            "data": {
                "server": server,
                "pool": self.pool.describe(),
                "service": service["aggregate"],
                "workers": service["workers"],
            },
        }
        return (200, JSON_CONTENT_TYPE,
                json.dumps(payload, separators=(",", ":")).encode("utf-8"))


__all__ = ["ReproServer", "MAX_BODY_BYTES", "MAX_HEADER_BYTES"]
