"""Transport-agnostic request execution for the serving layer.

Two pieces live here, deliberately independent of HTTP framing:

* :func:`run_endpoint` — execute one service endpoint against one
  :class:`~repro.api.service.SageService` and render the result as a wire
  triple ``(status, content_type, body_bytes)``.  Request bodies arrive as
  raw bytes plus a flag saying which envelope they use (``schema:1`` JSON
  or the ``schema:1b`` binary envelope); responses are encoded the same
  way.  Every :class:`~repro.api.errors.ApiError` maps onto its
  ``http_status`` with the standard ``to_dict`` payload — errors are
  always JSON, even for binary-accepting clients, because a client that
  cannot decode the error envelope is exactly the client that needs a
  readable one.

* :class:`WorkerPool` — where those executions run.  With more than one
  CPU (or an explicit ``workers=N``), a fork-based
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers each
  build their own :class:`SageService` over the *shared* persistent cache
  directory: a cold worker warm-starts every parse from disk instead of
  recomputing, and concurrent writers are safe because the store
  publishes atomically (see :mod:`repro.cache.store`).  On a single-CPU
  box — or when fork is unavailable — the pool degrades to one inline
  service behind a single-thread executor, exactly mirroring the engine's
  sweep degrade path: the event loop stays responsive while pipeline work
  is serialized.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from ..api.binenc import from_bytes, to_bytes
from ..api.contracts import ProcessRequest, SweepRequest, to_json
from ..api.errors import ApiError, RequestError
from ..api.service import SageService

JSON_CONTENT_TYPE = "application/json"
#: The ``schema:1b`` binary envelope (see :mod:`repro.api.binenc`), used
#: for both request bodies (``Content-Type``) and responses (``Accept``).
BINARY_CONTENT_TYPE = "application/x-repro-bin"

#: Endpoint names :func:`run_endpoint` understands.
ENDPOINTS = ("process", "sweep", "parse", "session", "stats")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a worker process needs to rebuild the service.

    Picklable by construction — it crosses the process boundary as the
    pool initializer argument, so it carries *paths*, never live objects.
    """

    cache_dir: str | None = None
    journal_path: str | None = None
    bundled_rewrites: bool = True

    def build_service(self) -> SageService:
        from ..rfc.registry import ProtocolRegistry

        if (self.cache_dir is None and self.journal_path is None
                and self.bundled_rewrites):
            # Nothing to customize: share the process-wide warm registry
            # (substrate, lexicons, parse cache) instead of rebuilding it.
            return SageService()
        registry = ProtocolRegistry(bundled_rewrites=self.bundled_rewrites,
                                    cache_dir=self.cache_dir)
        journal = None
        if self.journal_path:
            from ..disambiguation.resolution import (
                DecisionJournal,
                ResolutionError,
            )

            try:
                journal = DecisionJournal.load(self.journal_path)
            except (json.JSONDecodeError, ResolutionError, OSError) as exc:
                raise RequestError(
                    f"cannot read journal {self.journal_path}: {exc}"
                ) from exc
        return SageService(registry=registry, journal=journal)


# -- endpoint execution --------------------------------------------------------

def _rate(hits: int, misses: int) -> float | None:
    total = hits + misses
    return (hits / total) if total else None


def _json_body(payload: dict, status: int = 200) -> tuple[int, str, bytes]:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return status, JSON_CONTENT_TYPE, body


def _decode_request(body: bytes, binary_in: bool, request_type):
    """The request object (or JSON envelope string) for a wire body.

    Binary bodies must decode to exactly ``request_type``.  JSON bodies
    may be the full ``schema:1`` envelope *or* a bare field dict
    (``{"protocol": "ICMP"}``) for curl ergonomics; an empty body means
    an all-defaults request.
    """
    if binary_in:
        decoded = from_bytes(bytes(body))
        if not isinstance(decoded, request_type):
            raise RequestError(
                f"expected a {request_type.__name__} payload, got "
                f"{type(decoded).__name__}"
            )
        return decoded
    if not body or not body.strip():
        return request_type.from_dict({})
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError:
        raise RequestError(
            "request body is neither UTF-8 JSON nor marked as the binary "
            f"envelope (send Content-Type: {BINARY_CONTENT_TYPE})"
        ) from None
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from None
    if isinstance(payload, dict) and "schema" not in payload:
        return request_type.from_dict(payload)
    return text  # full envelope: the service coerces and type-checks it


def _encode_response(response, binary_out: bool) -> tuple[int, str, bytes]:
    if binary_out:
        return 200, BINARY_CONTENT_TYPE, to_bytes(response)
    return 200, JSON_CONTENT_TYPE, to_json(response).encode("utf-8")


def service_stats(service: SageService) -> dict:
    """The worker-side half of ``GET /stats``: cache counters with derived
    hit rates, persistent-store footprint, and the parser profile."""
    from ..parsing.profile import profile_snapshot

    registry = service.registry
    parse = dict(registry.parse_cache().stats())
    parse["hit_rate"] = _rate(parse.get("hits", 0), parse.get("misses", 0))
    compiled = dict(registry.compiled_cache().stats())
    compiled["hit_rate"] = _rate(compiled.get("hits", 0),
                                 compiled.get("misses", 0))
    store = registry.cache_store()
    store_stats = None
    if store is not None:
        store_stats = store.stats()
        store_stats["disk_hit_rate"] = _rate(store_stats["disk_hits"],
                                             store_stats["disk_misses"])
    return {
        "pid": os.getpid(),
        "cache_dir": registry.cache_dir,
        "parse_cache": parse,
        "compiled_cache": compiled,
        "store": store_stats,
        "profile": profile_snapshot(),
    }


def run_endpoint(service: SageService, endpoint: str, body: bytes = b"", *,
                 binary_in: bool = False, binary_out: bool = False,
                 params: dict | None = None) -> tuple[int, str, bytes]:
    """Execute ``endpoint`` and render the full wire triple.

    Never raises for request-shaped failures: :class:`ApiError` renders as
    its ``http_status`` with the structured ``to_dict`` payload, anything
    else as a 500 — a worker must hand *some* response back rather than
    poison the pool with a pickled traceback.
    """
    params = params or {}
    try:
        if endpoint == "process":
            request = _decode_request(body, binary_in, ProcessRequest)
            return _encode_response(service.process(request), binary_out)
        if endpoint == "sweep":
            request = _decode_request(body, binary_in, SweepRequest)
            return _encode_response(service.sweep(request), binary_out)
        if endpoint == "parse":
            report = service.parse_diagnostics(
                params["protocol"],
                parser_backend=params.get("parser_backend", ""),
                mode=params.get("mode", "revised"),
            )
            return _json_body({"schema": 1, "kind": "parse_diagnostics",
                               "data": report})
        if endpoint == "session":
            session = service.session(params["protocol"],
                                      mode=params.get("mode", "revised"))
            pending = bool(params.get("pending"))
            reports = session.pending() if pending else session.flagged()
            return _json_body({
                "schema": 1, "kind": "sentence_report_list",
                "data": {"protocol": session.protocol,
                         "pending_only": pending,
                         "reports": [report.to_dict()
                                     for report in reports]},
            })
        if endpoint == "stats":
            return _json_body({"schema": 1, "kind": "service_stats",
                               "data": service_stats(service)})
        raise RequestError(
            f"unknown endpoint {endpoint!r}; known endpoints are "
            f"{', '.join(ENDPOINTS)}"
        )
    except ApiError as exc:
        return _json_body(exc.to_dict(), status=exc.http_status)
    except Exception as exc:  # the pool must answer, whatever broke
        return _json_body({"error": "internal",
                           "message": f"{type(exc).__name__}: {exc}"},
                          status=500)


# -- process-pool worker globals -----------------------------------------------
# Fork workers rebuild their own service from the ServiceConfig (paths,
# not objects): each worker owns fresh locks and an independent in-memory
# cache, while the *persistent* caches converge on the shared directory.

_WORKER_CONFIG: ServiceConfig | None = None
_WORKER_SERVICE: SageService | None = None


def _init_worker(config: ServiceConfig) -> None:
    global _WORKER_CONFIG, _WORKER_SERVICE
    _WORKER_CONFIG = config
    _WORKER_SERVICE = None  # built lazily, on the first real request


def _worker_service() -> SageService:
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        service = (_WORKER_CONFIG or ServiceConfig()).build_service()
        # Fork can capture the parent's locks mid-hold; workers are
        # single-threaded, so fresh locks are always safe.
        service.registry.reset_locks_after_fork()
        _WORKER_SERVICE = service
    return _WORKER_SERVICE


def _worker_ping() -> int:
    """Warmup no-op: forces the process to exist before the event loop
    starts adding threads that fork must not race with."""
    return os.getpid()


def _pool_run(endpoint: str, body: bytes, binary_in: bool, binary_out: bool,
              params: dict) -> tuple[int, str, bytes]:
    return run_endpoint(_worker_service(), endpoint, body,
                        binary_in=binary_in, binary_out=binary_out,
                        params=params)


def _pool_stats(rendezvous: str, expected: int, patience: float) -> dict:
    """One worker's stats, gathered under a filesystem rendezvous.

    Cache and profile counters are process-local, so ``/stats`` must hear
    from *every* worker.  A ``ProcessPoolExecutor`` worker runs one task
    at a time, so ``expected`` tasks that all block until ``expected``
    check-ins exist necessarily occupy ``expected`` distinct workers —
    the check-in files (one per pid) are the barrier.  ``patience``
    bounds the wait: a worker stuck behind a long pipeline request just
    means a partial (pid-deduplicated) aggregate, never a hang.
    """
    import time

    pid_file = os.path.join(rendezvous, str(os.getpid()))
    try:
        with open(pid_file, "w"):
            pass
    except OSError:
        return service_stats(_worker_service())
    give_up = time.monotonic() + patience
    while time.monotonic() < give_up:
        try:
            if len(os.listdir(rendezvous)) >= expected:
                break
        except OSError:
            break
        time.sleep(0.02)
    return service_stats(_worker_service())


def _sum_counters(dicts: list[dict], keys: tuple[str, ...]) -> dict:
    return {key: sum(d.get(key) or 0 for d in dicts) for key in keys}


def aggregate_stats(per_worker: list[dict]) -> dict:
    """Fold per-worker stats into one truthful view: counters sum, rates
    are recomputed over the summed window, the on-disk footprint (shared
    by construction) comes from any one worker."""
    from ..parsing.profile import COUNTER_NAMES, profile_delta

    parse = _sum_counters(
        [w["parse_cache"] for w in per_worker],
        ("size", "hits", "misses", "disk_hits"),
    )
    parse["hit_rate"] = _rate(parse["hits"], parse["misses"])
    compiled = _sum_counters(
        [w["compiled_cache"] for w in per_worker],
        ("size", "hits", "misses", "disk_hits"),
    )
    compiled["hit_rate"] = _rate(compiled["hits"], compiled["misses"])
    stores = [w["store"] for w in per_worker if w.get("store")]
    store = None
    if stores:
        store = _sum_counters(
            stores, ("disk_hits", "disk_misses", "writes", "quarantined")
        )
        store["disk_hit_rate"] = _rate(store["disk_hits"],
                                       store["disk_misses"])
        for key in ("root", "layout_version", "namespaces",
                    "quarantine_entries"):
            store[key] = stores[0].get(key)
    profiles = [w["profile"] for w in per_worker]
    zeros = {name: 0 for name in COUNTER_NAMES}
    profile = profile_delta(zeros, _sum_counters(profiles, COUNTER_NAMES))
    return {
        "worker_count": len(per_worker),
        "parse_cache": parse,
        "compiled_cache": compiled,
        "store": store,
        "profile": profile,
    }


# -- the pool ------------------------------------------------------------------

class WorkerPool:
    """Request execution over forked workers, or inline when that is moot.

    ``workers=None`` resolves automatically: ``os.cpu_count()`` processes
    when the machine has more than one CPU, inline otherwise (the same
    degrade the engine's parallel sweep makes).  An explicit ``workers=N``
    with ``N >= 2`` forces a process pool even on one CPU — that is how
    the concurrency tests exercise multi-process cache sharing — and
    ``workers`` of 0 or 1 forces inline.  If fork itself is unavailable
    the pool degrades to inline regardless.

    Inline mode runs one shared service behind a single-thread executor:
    pipeline work is serialized (single-worker semantics) while the
    caller's event loop stays free to answer ``/healthz``.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 workers: int | None = None, registry=None) -> None:
        self.config = config or ServiceConfig()
        cpu = os.cpu_count() or 1
        if workers is None:
            requested = cpu if cpu > 1 else 1
        else:
            requested = max(int(workers), 1)
        self.mode = "inline"
        self.workers = 1
        self._service: SageService | None = None
        self._executor = None
        if requested > 1:
            self._executor = self._start_process_pool(requested)
        if self._executor is None:
            if registry is not None:
                self._service = SageService(registry=registry)
            else:
                self._service = self.config.build_service()
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        else:
            self.mode = "process"
            self.workers = requested

    def _start_process_pool(self, requested: int):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            return None
        try:
            executor = ProcessPoolExecutor(
                max_workers=requested, mp_context=context,
                initializer=_init_worker, initargs=(self.config,),
            )
            # Fork every worker *now*, from a quiet single-threaded
            # parent, instead of lazily under concurrent request load.
            pings = [executor.submit(_worker_ping) for _ in range(requested)]
            for ping in pings:
                ping.result(timeout=60)
        except (OSError, ValueError, TimeoutError):
            return None
        return executor

    # -- execution --------------------------------------------------------------
    def submit(self, endpoint: str, body: bytes = b"", *,
               binary_in: bool = False, binary_out: bool = False,
               params: dict | None = None) -> Future:
        """A future resolving to the ``(status, content_type, body)`` triple."""
        params = dict(params or {})
        if self.mode == "process":
            return self._executor.submit(_pool_run, endpoint, bytes(body),
                                         binary_in, binary_out, params)
        return self._executor.submit(
            run_endpoint, self._service, endpoint, body,
            binary_in=binary_in, binary_out=binary_out, params=params,
        )

    def run(self, endpoint: str, body: bytes = b"", *,
            binary_in: bool = False, binary_out: bool = False,
            params: dict | None = None,
            timeout: float | None = None) -> tuple[int, str, bytes]:
        """Synchronous :meth:`submit` (tests, CLI one-shots)."""
        return self.submit(endpoint, body, binary_in=binary_in,
                           binary_out=binary_out, params=params
                           ).result(timeout=timeout)

    def collect_stats(self, patience: float = 10.0) -> dict:
        """Stats from *every* worker plus the summed aggregate.

        Inline mode asks the one service directly.  Process mode fans a
        blocking rendezvous task out to each worker (see
        :func:`_pool_stats`); under concurrent load the barrier may time
        out and the aggregate covers the workers that answered — the
        ``worker_count`` field says how many that was.
        """
        if self.mode != "process":
            future = self._executor.submit(service_stats, self._service)
            worker = future.result(timeout=patience + 30)
            return {"workers": [worker], "aggregate": aggregate_stats([worker])}
        import shutil
        import tempfile

        rendezvous = tempfile.mkdtemp(prefix="repro-stats-")
        try:
            futures = [
                self._executor.submit(_pool_stats, rendezvous, self.workers,
                                      patience)
                for _ in range(self.workers)
            ]
            gathered: dict[int, dict] = {}
            for future in futures:
                try:
                    worker = future.result(timeout=patience + 30)
                except Exception:
                    continue  # a dying worker must not take /stats down
                gathered[worker["pid"]] = worker
        finally:
            shutil.rmtree(rendezvous, ignore_errors=True)
        per_worker = [gathered[pid] for pid in sorted(gathered)]
        return {"workers": per_worker,
                "aggregate": aggregate_stats(per_worker)}

    # -- introspection / lifecycle ----------------------------------------------
    def describe(self) -> dict:
        return {"mode": self.mode, "workers": self.workers,
                "cache_dir": self.config.cache_dir}

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "BINARY_CONTENT_TYPE",
    "ENDPOINTS",
    "JSON_CONTENT_TYPE",
    "ServiceConfig",
    "WorkerPool",
    "run_endpoint",
    "service_stats",
]
