"""``repro.server`` — the HTTP serving layer over :class:`~repro.api.service.SageService`.

Two halves, deliberately decoupled:

* :mod:`repro.server.pool` — transport-agnostic request execution: a
  :class:`WorkerPool` that fans requests out to forked worker processes
  (when the machine has more than one CPU, mirroring the engine's sweep
  degrade behavior) or runs them inline on a single serialized thread,
  plus the endpoint handlers that turn a wire body into a wire response
  triple ``(status, content_type, bytes)`` with structured
  :class:`~repro.api.errors.ApiError` → HTTP status mapping.  Workers
  share the persistent content-addressed caches (:mod:`repro.cache`)
  through ``--cache-dir``/``$REPRO_CACHE_DIR``: a cold worker warm-starts
  every parse from disk instead of recomputing.

* :mod:`repro.server.http` — the asyncio HTTP/1.1 front end
  (:class:`ReproServer`): stdlib-only socket handling, keep-alive,
  per-request deadlines (504 on expiry), content negotiation between the
  ``schema:1`` JSON contract and the ``schema:1b`` binary envelope
  (``application/x-repro-bin``), and the ``/healthz`` + ``/stats``
  operational endpoints.

Driven by ``python -m repro serve`` and load-gated by
``benchmarks/load_harness.py`` (see ``scripts/ci.sh serve-gate``).
"""

from .http import ReproServer
from .pool import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    ServiceConfig,
    WorkerPool,
    run_endpoint,
    service_stats,
)

__all__ = [
    "BINARY_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
    "ReproServer",
    "ServiceConfig",
    "WorkerPool",
    "run_endpoint",
    "service_stats",
]
