"""A compact rule-based part-of-speech tagger.

Stands in for spaCy's tagger: closed-class words come from explicit
lexicons, verbs from a curated RFC-verb list plus morphology, and everything
else defaults to noun — the right default for technical prose, where unknown
tokens are nearly always terminology.
"""

from __future__ import annotations

DETERMINERS = {"a", "an", "the", "this", "that", "these", "those", "any",
               "some", "each", "every", "no", "its", "their", "whichever"}

PREPOSITIONS = {"of", "in", "on", "at", "to", "from", "with", "by", "for",
                "into", "over", "under", "between", "through", "during",
                "within", "without", "via", "per", "as", "starting", "about",
                "since", "regarding", "concerning", "against"}

MODALS = {"may", "must", "shall", "should", "can", "could", "will", "would",
          "might"}

AUXILIARIES = {"is", "are", "was", "were", "be", "been", "being", "has",
               "have", "had", "does", "do", "did"}

CONJUNCTIONS = {"and", "or", "but", "nor", "plus"}

SUBORDINATORS = {"if", "when", "unless", "until", "while", "because",
                 "whether", "where", "then"}

PRONOUNS = {"it", "they", "them", "itself", "which", "who", "whom", "that"}

ADVERBS = {"simply", "only", "also", "then", "not", "always", "never",
           "otherwise", "thus", "currently", "immediately", "again",
           "back", "already", "instead", "nonzero", "actually", "typically",
           "directly", "fully", "absolutely", "last"}

# Verbs that appear in RFC behavioural text, in base/3sg/past/participle
# forms.  Morphology below catches regular inflections of these.
VERB_STEMS = {
    "send", "sent", "receive", "return", "reply", "respond", "set", "clear",
    "compute", "computing", "recompute", "recomputed", "calculate", "form",
    "formed", "match", "matching", "discard", "discarded", "select",
    "selected", "use", "used", "reverse", "reversed", "change", "changed",
    "update", "updated", "increment", "decrement", "exceed", "exceeded",
    "reach", "reaches", "reached", "call", "called", "transmit", "cease",
    "maintain", "identify", "identifies", "identified", "aid", "describe",
    "contain", "contains", "insert", "inserted", "take", "taken", "append",
    "appended", "copy", "copied", "zero", "zeroed", "assume", "assumed",
    "specify", "specified", "associate", "associated", "determine", "begin",
    "begins", "start", "starts", "started", "end", "ends", "process",
    "processed", "generate", "generated", "construct", "constructed",
    "choose", "place", "placed", "echo", "echoed", "found",
    "find", "fill", "filled", "put", "examine", "examined", "deliver",
    "delivered", "forward", "forwarded", "act", "initialize", "initialized",
    "communicate", "advise", "design", "designed", "pad", "padded", "touch",
    "touched", "avoid", "notify", "queue", "queued", "reply", "replied",
    "detect", "detected", "exchange", "exchanged", "recompute", "reverse",
    "reversed", "discard", "zero", "zeroed", "reset", "recalculate",
    "transmit", "transmitted", "associate", "associated", "establish",
    "established", "report", "reported", "carry", "carries", "carried",
}

TAG_DET = "DET"
TAG_PREP = "PREP"
TAG_MODAL = "MODAL"
TAG_AUX = "AUX"
TAG_CONJ = "CONJ"
TAG_SUB = "SUB"
TAG_PRON = "PRON"
TAG_ADV = "ADV"
TAG_VERB = "VERB"
TAG_NOUN = "NOUN"
TAG_NUM = "NUM"
TAG_PUNCT = "PUNCT"
TAG_OP = "OP"


def tag_word(word: str) -> str:
    """Tag a single token's surface form."""
    lower = word.lower()
    if lower in DETERMINERS:
        return TAG_DET
    if lower in MODALS:
        return TAG_MODAL
    if lower in AUXILIARIES:
        return TAG_AUX
    if lower in CONJUNCTIONS:
        return TAG_CONJ
    if lower in SUBORDINATORS:
        return TAG_SUB
    if lower in PREPOSITIONS:
        return TAG_PREP
    if lower in PRONOUNS:
        return TAG_PRON
    if lower in ADVERBS:
        return TAG_ADV
    if lower in VERB_STEMS:
        return TAG_VERB
    if _looks_like_verb(lower):
        return TAG_VERB
    return TAG_NOUN


def _looks_like_verb(lower: str) -> bool:
    """Morphology: regular inflections of known verb stems."""
    for suffix in ("ed", "d", "es", "s", "ing"):
        if lower.endswith(suffix) and lower[: -len(suffix)] in VERB_STEMS:
            return True
    if lower.endswith("ing") and lower[:-3] + "e" in VERB_STEMS:
        return True
    return False


def is_noun_like(tag: str) -> bool:
    return tag in (TAG_NOUN, TAG_PRON)
