"""Tokenization tuned for RFC prose.

RFC text mixes ordinary English with idioms a generic tokenizer mangles:
``code = 0`` (field tests), ``bfd.SessionState`` (state variables),
hyphenated terms (``one's complement``, ``time-to-live``), and quoted field
names.  The tokenizer keeps those intact as single tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property

# Order matters: the first alternative that matches wins.
_TOKEN_PATTERN = re.compile(
    r"""
    (?P<statevar>\b[a-zA-Z]+\.[A-Za-z][A-Za-z0-9]*\b)   # bfd.SessionState
  | (?P<numword>\b\d+-[A-Za-z][A-Za-z0-9\-]*)            # 16-bit, 3-way
  | (?P<number>\b\d+(?:\.\d+)*\b)                        # 0, 16, 64, 1.2
  | (?P<word>[A-Za-z][A-Za-z0-9_'\-]*)                   # words, one's, time-to-live
  | (?P<op>=|\+|/|>=|<=|>|<)                             # idiom operators
  | (?P<punct>[,.;:()\[\]"])                             # punctuation
    """,
    re.VERBOSE,
)

KIND_WORD = "word"
KIND_NUMBER = "number"
KIND_OP = "op"
KIND_PUNCT = "punct"
KIND_STATEVAR = "statevar"
KIND_NOUN_PHRASE = "np"  # produced by the chunker, not the tokenizer


@dataclass(frozen=True)
class Token:
    """One token: surface text, kind, and source character offset."""

    text: str
    kind: str
    position: int

    @cached_property
    def lower(self) -> str:
        """Lowercased surface text, computed once per token.

        Lexicon lookups, the phrase-trie walk, and the tagger all key on
        the lowercase form; caching it makes a token "trie-ready" — the
        chunker warms it on every token it emits so the parse loop never
        re-lowercases."""
        return self.text.lower()

    def is_word(self) -> bool:
        return self.kind == KIND_WORD

    def __str__(self) -> str:
        return self.text


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, preserving RFC idioms."""
    tokens = []
    for match in _TOKEN_PATTERN.finditer(text):
        kind = match.lastgroup or KIND_WORD
        if kind == "numword":  # "16-bit" behaves like an ordinary modifier word
            kind = KIND_WORD
        tokens.append(Token(text=match.group(), kind=kind, position=match.start()))
    return tokens


_ABBREVIATIONS = {"e.g", "i.e", "etc", "cf", "vs", "fig", "sec", "no"}


def split_sentences(text: str) -> list[str]:
    """Split a paragraph into sentences.

    Periods end a sentence unless they belong to a known abbreviation, a
    number (``10.0.1.1``), or a state variable (``bfd.SessionState``).
    """
    sentences: list[str] = []
    start = 0
    index = 0
    while index < len(text):
        char = text[index]
        if char in ".!?":
            before = text[:index]
            word_match = re.search(r"[\w.]+$", before)
            last_word = word_match.group().lower() if word_match else ""
            next_char = text[index + 1] if index + 1 < len(text) else " "
            is_abbrev = last_word.rstrip(".") in _ABBREVIATIONS
            is_internal = char == "." and (
                next_char.isdigit() or next_char.isalpha()
            )
            if not is_abbrev and not is_internal:
                sentence = text[start : index + 1].strip()
                if sentence:
                    sentences.append(sentence)
                start = index + 1
        index += 1
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences


def normalize_term(text: str) -> str:
    """Canonical snake_case identifier for a noun phrase.

    "Echo Reply Message" -> "echo_reply_message"; used as the constant value
    carried through logical forms and looked up in codegen contexts.
    """
    cleaned = text.lower().strip()
    cleaned = cleaned.replace("'s", "s")
    cleaned = re.sub(r"[^a-z0-9.]+", "_", cleaned)
    return cleaned.strip("_")
