"""The domain term dictionary and longest-match lookup.

Paper §3: "sage creates a term dictionary of domain-specific nouns and
noun-phrases using the index of a standard networking textbook."  The
dictionary drives noun-phrase labeling: multiword domain terms are fused
into single NP tokens before CCG parsing, which Table 7/8 show is critical
to keeping the logical-form count small.
"""

from __future__ import annotations

from importlib import resources
from typing import Iterable


class TermDictionary:
    """A set of known noun phrases with longest-prefix-match lookup."""

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._terms: set[tuple[str, ...]] = set()
        self._max_words = 1
        for term in terms:
            self.add(term)

    def add(self, term: str) -> None:
        words = tuple(term.lower().split())
        if not words:
            return
        self._terms.add(words)
        self._max_words = max(self._max_words, len(words))

    def __contains__(self, term: str) -> bool:
        return tuple(term.lower().split()) in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    @property
    def max_words(self) -> int:
        return self._max_words

    def longest_match(self, words: list[str], start: int) -> int:
        """Length (in words) of the longest dictionary term at ``start``; 0 if none.

        Plural surface forms match their singular dictionary entry ("echos",
        "replies", "addresses" all hit), so RFC prose does not need separate
        plural entries.
        """
        limit = min(self._max_words, len(words) - start)
        for length in range(limit, 0, -1):
            candidate = tuple(word.lower() for word in words[start : start + length])
            if candidate in self._terms:
                return length
            singular = candidate[:-1] + (_singularize(candidate[-1]),)
            if singular in self._terms:
                return length
        return 0

    def all_terms(self) -> list[str]:
        return sorted(" ".join(words) for words in self._terms)


def _singularize(word: str) -> str:
    """Heuristic singular form: replies→reply, addresses→address, echos→echo."""
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith(("sses", "shes", "ches", "xes")):
        return word[:-2]
    if word.endswith("s") and not word.endswith("ss") and len(word) > 3:
        return word[:-1]
    return word


_default_dictionary: TermDictionary | None = None


def load_default_dictionary(refresh: bool = False) -> TermDictionary:
    """The bundled ~400-term networking dictionary, loaded once per process.

    The returned instance is shared (every default-constructed chunker and
    the protocol registry reuse it) — treat it as read-only, or pass
    ``refresh=True`` to re-read ``terms.txt`` after editing it.
    """
    global _default_dictionary
    if _default_dictionary is None or refresh:
        text = resources.files("repro.data").joinpath("terms.txt").read_text()
        terms = [
            line.strip()
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        ]
        _default_dictionary = TermDictionary(terms)
    return _default_dictionary
