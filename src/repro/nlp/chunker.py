"""Noun-phrase labeling: fuse multiword terms into single NP tokens.

This is the spaCy-equivalent stage of §3: before CCG parsing, domain terms
("echo reply message", "one's complement sum", "bfd.SessionState") are fused
into single NP tokens.  Table 7 shows why: left unfused, each extra word
multiplies the derivations CCG finds, and Table 8 shows that with labeling
disabled most sentences stop parsing entirely.

Labeling passes, in priority order:
1. quoted phrases — explicit single-NP markup;
2. dictionary longest match — the networking term dictionary;
3. plain noun runs — consecutive NOUN-tagged words fuse into one NP.

The ablation switches (`use_dictionary`, `use_np_labeling`) reproduce the
Table 8 experiment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .tagger import TAG_NOUN, tag_word
from .terms import TermDictionary, load_default_dictionary
from .tokenizer import (
    KIND_NOUN_PHRASE,
    KIND_NUMBER,
    KIND_STATEVAR,
    KIND_WORD,
    Token,
    tokenize,
)


@dataclass
class ChunkerConfig:
    """Ablation switches for the Table 7/8 experiments."""

    use_dictionary: bool = True
    use_np_labeling: bool = True
    merge_adjacent: bool = True  # off = "poor labeling" (split noun phrases)


class NounPhraseChunker:
    """Relabels token streams so each noun phrase is one NP token."""

    def __init__(self, dictionary: TermDictionary | None = None,
                 config: ChunkerConfig | None = None) -> None:
        self.dictionary = dictionary if dictionary is not None else load_default_dictionary()
        self.config = config or ChunkerConfig()

    def fingerprint(self) -> str:
        """Content hash of the dictionary terms plus the ablation switches.

        Part of the parse-cache key: a chunker with a different term set or
        different labeling configuration produces different token streams,
        so its parses must never be served from another chunker's cache."""
        config = self.config
        payload = "\n".join(sorted(self.dictionary.all_terms())) + (
            f"\n#{int(config.use_dictionary)}{int(config.use_np_labeling)}"
            f"{int(config.merge_adjacent)}"
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def chunk_text(self, text: str) -> list[Token]:
        return self.chunk(tokenize(text))

    def chunk(self, tokens: list[Token]) -> list[Token]:
        if not self.config.use_np_labeling:
            return self._trie_ready(list(tokens))
        tokens = self._fuse_quoted(tokens)
        if self.config.use_dictionary:
            tokens = self._fuse_dictionary(tokens)
        tokens = self._fuse_noun_runs(tokens)
        tokens = self._fuse_number_units(tokens)
        if self.config.merge_adjacent:
            tokens = self._merge_adjacent_nps(tokens)
        return self._trie_ready(tokens)

    @staticmethod
    def _trie_ready(tokens: list[Token]) -> list[Token]:
        """Warm each emitted token's cached ``lower`` so downstream
        consumers (the lexicon trie walk, the tagger) never re-lowercase."""
        for token in tokens:
            token.lower  # noqa: B018 — populates the cached_property
        return tokens

    # -- pass 1: quoted phrases -------------------------------------------
    @staticmethod
    def _fuse_quoted(tokens: list[Token]) -> list[Token]:
        result: list[Token] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.text == '"':
                closing = next(
                    (j for j in range(index + 1, len(tokens)) if tokens[j].text == '"'),
                    None,
                )
                if closing is not None and closing > index + 1:
                    inner = tokens[index + 1 : closing]
                    result.append(
                        Token(
                            text=" ".join(t.text for t in inner),
                            kind=KIND_NOUN_PHRASE,
                            position=inner[0].position,
                        )
                    )
                    index = closing + 1
                    continue
            result.append(token)
            index += 1
        return result

    # -- pass 2: dictionary longest match -----------------------------------
    def _fuse_dictionary(self, tokens: list[Token]) -> list[Token]:
        result: list[Token] = []
        words = [token.text for token in tokens]
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.kind in (KIND_WORD, KIND_STATEVAR):
                length = self.dictionary.longest_match(words, index)
                if length >= 1:
                    span = tokens[index : index + length]
                    result.append(
                        Token(
                            text=" ".join(t.text for t in span),
                            kind=KIND_NOUN_PHRASE,
                            position=token.position,
                        )
                    )
                    index += length
                    continue
            result.append(token)
            index += 1
        return result

    # -- pass 3: noun runs ----------------------------------------------------
    @staticmethod
    def _fuse_noun_runs(tokens: list[Token]) -> list[Token]:
        result: list[Token] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.kind == KIND_STATEVAR:
                result.append(
                    Token(text=token.text, kind=KIND_NOUN_PHRASE, position=token.position)
                )
                index += 1
                continue
            if token.kind == KIND_WORD and tag_word(token.text) == TAG_NOUN:
                run = [token]
                scan = index + 1
                while (
                    scan < len(tokens)
                    and tokens[scan].kind == KIND_WORD
                    and tag_word(tokens[scan].text) == TAG_NOUN
                ):
                    run.append(tokens[scan])
                    scan += 1
                result.append(
                    Token(
                        text=" ".join(t.text for t in run),
                        kind=KIND_NOUN_PHRASE,
                        position=token.position,
                    )
                )
                index = scan
                continue
            result.append(token)
            index += 1
        return result

    @staticmethod
    def _fuse_number_units(tokens: list[Token]) -> list[Token]:
        return _fuse_number_units_impl(tokens)

    @staticmethod
    def _merge_adjacent_nps(tokens: list[Token]) -> list[Token]:
        return _merge_adjacent_nps_impl(tokens)


_UNIT_NOUNS = {"bit", "bits", "octet", "octets", "byte", "bytes", "word",
               "words", "millisecond", "milliseconds", "second", "seconds"}


def _fuse_number_units_impl(tokens: list[Token]) -> list[Token]:
    """Merge "32 bits"-style quantity phrases into one NP token."""
    result: list[Token] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        next_token = tokens[index + 1] if index + 1 < len(tokens) else None
        if (
            token.kind == KIND_NUMBER
            and next_token is not None
            and next_token.kind in (KIND_NOUN_PHRASE,)
            and next_token.text.split()[0].lower() in _UNIT_NOUNS
        ):
            result.append(
                Token(
                    text=f"{token.text} {next_token.text}",
                    kind=KIND_NOUN_PHRASE,
                    position=token.position,
                )
            )
            index += 2
            continue
        result.append(token)
        index += 1
    return result


def _merge_adjacent_nps_impl(tokens: list[Token]) -> list[Token]:
    """Fuse runs of adjacent NP tokens ("ICMP type" + "field") into one NP.

    Dictionary fusion and noun-run fusion can leave a noun phrase split
    where a dictionary term ends mid-phrase; adjacent nominals in technical
    prose form a single compound.
    """
    result: list[Token] = []
    for token in tokens:
        if (
            token.kind == KIND_NOUN_PHRASE
            and result
            and result[-1].kind == KIND_NOUN_PHRASE
        ):
            previous = result.pop()
            result.append(
                Token(
                    text=f"{previous.text} {token.text}",
                    kind=KIND_NOUN_PHRASE,
                    position=previous.position,
                )
            )
        else:
            result.append(token)
    return result


def chunk_counts(tokens: list[Token]) -> dict[str, int]:
    """Histogram of token kinds; used by tests and the ablation study."""
    counts: dict[str, int] = {}
    for token in tokens:
        counts[token.kind] = counts.get(token.kind, 0) + 1
    return counts


__all__ = [
    "ChunkerConfig",
    "NounPhraseChunker",
    "chunk_counts",
    "KIND_NOUN_PHRASE",
    "KIND_NUMBER",
]
