"""NLP substrate: tokenizer, POS tagger, NP chunker, term dictionary.

Replaces the spaCy dependency of the paper's pipeline (§3): sentences are
tokenized with RFC idioms preserved, noun phrases are fused into single NP
tokens via the domain dictionary plus a rule-based tagger, and the result
feeds the CCG parser.
"""

from .chunker import ChunkerConfig, NounPhraseChunker, chunk_counts
from .tagger import tag_word
from .terms import TermDictionary, load_default_dictionary
from .tokenizer import (
    KIND_NOUN_PHRASE,
    KIND_NUMBER,
    KIND_OP,
    KIND_PUNCT,
    KIND_STATEVAR,
    KIND_WORD,
    Token,
    normalize_term,
    split_sentences,
    tokenize,
)

__all__ = [
    "ChunkerConfig",
    "KIND_NOUN_PHRASE",
    "KIND_NUMBER",
    "KIND_OP",
    "KIND_PUNCT",
    "KIND_STATEVAR",
    "KIND_WORD",
    "NounPhraseChunker",
    "TermDictionary",
    "Token",
    "chunk_counts",
    "load_default_dictionary",
    "normalize_term",
    "split_sentences",
    "tag_word",
    "tokenize",
]
