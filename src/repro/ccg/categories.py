"""CCG syntactic categories.

Primitive categories (S, NP, N, PP, CONJ) and complex categories built with
the two slashes: ``X/Y`` (seeks Y to the right) and ``X\\Y`` (seeks Y to the
left).  Category strings parse with left association, so ``S\\NP/NP`` reads
``(S\\NP)/NP`` — a transitive verb.
"""

from __future__ import annotations

from dataclasses import dataclass

FORWARD = "/"
BACKWARD = "\\"


class Category:
    """Base class; use :func:`parse_category` or the helpers to build."""

    def is_function(self) -> bool:
        return isinstance(self, Func)


@dataclass(frozen=True)
class Prim(Category):
    """A primitive category such as S or NP."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Func(Category):
    """A function category ``result/arg`` or ``result\\arg``."""

    result: Category
    slash: str
    arg: Category

    def __post_init__(self) -> None:
        if self.slash not in (FORWARD, BACKWARD):
            raise ValueError(f"bad slash {self.slash!r}")

    def __str__(self) -> str:
        result = str(self.result)
        if isinstance(self.result, Func):
            result = f"({result})"
        arg = str(self.arg)
        if isinstance(self.arg, Func):
            arg = f"({arg})"
        return f"{result}{self.slash}{arg}"


S = Prim("S")
NP = Prim("NP")
N = Prim("N")
PP = Prim("PP")
CONJ = Prim("CONJ")


def forward(result: Category, arg: Category) -> Func:
    """``result/arg``: combines with ``arg`` on the right."""
    return Func(result, FORWARD, arg)


def backward(result: Category, arg: Category) -> Func:
    """``result\\arg``: combines with ``arg`` on the left."""
    return Func(result, BACKWARD, arg)


def parse_category(text: str) -> Category:
    """Parse a category string, e.g. ``"(S\\NP)/NP"``.

    Slashes associate left: ``S\\NP/NP`` means ``(S\\NP)/NP``.
    """
    tokens = _lex(text)
    category, rest = _parse_tokens(tokens)
    if rest:
        raise ValueError(f"trailing tokens in category {text!r}: {rest}")
    return category


def _lex(text: str) -> list[str]:
    tokens = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
        elif char in "()/\\":
            tokens.append(char)
            index += 1
        elif char.isalpha():
            start = index
            while index < len(text) and text[index].isalnum():
                index += 1
            tokens.append(text[start:index])
        else:
            raise ValueError(f"bad character {char!r} in category {text!r}")
    return tokens


def _parse_tokens(tokens: list[str]) -> tuple[Category, list[str]]:
    left, rest = _parse_atom(tokens)
    while rest and rest[0] in (FORWARD, BACKWARD):
        slash = rest[0]
        right, rest = _parse_atom(rest[1:])
        left = Func(left, slash, right)
    return left, rest


def _parse_atom(tokens: list[str]) -> tuple[Category, list[str]]:
    if not tokens:
        raise ValueError("unexpected end of category")
    head = tokens[0]
    if head == "(":
        inner, rest = _parse_tokens(tokens[1:])
        if not rest or rest[0] != ")":
            raise ValueError("unbalanced parenthesis in category")
        return inner, rest[1:]
    if head in (FORWARD, BACKWARD, ")"):
        raise ValueError(f"unexpected token {head!r} in category")
    return Prim(head), tokens[1:]
