"""CCG syntactic categories.

Primitive categories (S, NP, N, PP, CONJ) and complex categories built with
the two slashes: ``X/Y`` (seeks Y to the right) and ``X\\Y`` (seeks Y to the
left).  Category strings parse with left association, so ``S\\NP/NP`` reads
``(S\\NP)/NP`` — a transitive verb.
"""

from __future__ import annotations

from dataclasses import dataclass

FORWARD = "/"
BACKWARD = "\\"


class Category:
    """Base class; use :func:`parse_category` or the helpers to build."""

    def is_function(self) -> bool:
        return isinstance(self, Func)


@dataclass(frozen=True)
class Prim(Category):
    """A primitive category such as S or NP."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Func(Category):
    """A function category ``result/arg`` or ``result\\arg``."""

    result: Category
    slash: str
    arg: Category

    def __post_init__(self) -> None:
        if self.slash not in (FORWARD, BACKWARD):
            raise ValueError(f"bad slash {self.slash!r}")

    def __str__(self) -> str:
        result = str(self.result)
        if isinstance(self.result, Func):
            result = f"({result})"
        arg = str(self.arg)
        if isinstance(self.arg, Func):
            arg = f"({arg})"
        return f"{result}{self.slash}{arg}"


# Categories are hashed on every probe of the indexed backend's per-cell
# category maps; the generated frozen-dataclass __hash__ recomputes the
# field-tuple hash each call, which is recursive for nested Func trees.
# Cache it per instance (stored outside the declared fields, so equality
# and repr are untouched).
def _cached_hash(make_key):
    def __hash__(self):
        value = self.__dict__.get("_hash_cache")
        if value is None:
            value = hash(make_key(self))
            object.__setattr__(self, "_hash_cache", value)
        return value

    return __hash__


Prim.__hash__ = _cached_hash(lambda self: (Prim, self.name))
Func.__hash__ = _cached_hash(
    lambda self: (Func, self.result, self.slash, self.arg)
)


# Value-interned small-int category ids, cached per instance.  Hot dict
# keys built from categories (per-cell indexes, dedup keys, the production
# memo) use these ints instead of the recursive structures: equal
# categories — shared objects or not — always map to the same id.
# Assignment is an atomic ``setdefault`` drawing from a counter, so two
# racing threads can never hand the same id to different categories (at
# worst a counter value is burned); ids may therefore have gaps.
_category_ids: dict[Category, int] = {}
_next_category_id = __import__("itertools").count()


def category_id(category: Category) -> int:
    """The process-wide intern id of ``category`` (equality-keyed)."""
    d = category.__dict__
    cid = d.get("_cid")
    if cid is None:
        cid = _category_ids.get(category)
        if cid is None:
            cid = _category_ids.setdefault(category, next(_next_category_id))
        d["_cid"] = cid
    return cid


S = Prim("S")
NP = Prim("NP")
N = Prim("N")
PP = Prim("PP")
CONJ = Prim("CONJ")


def forward(result: Category, arg: Category) -> Func:
    """``result/arg``: combines with ``arg`` on the right."""
    return Func(result, FORWARD, arg)


def backward(result: Category, arg: Category) -> Func:
    """``result\\arg``: combines with ``arg`` on the left."""
    return Func(result, BACKWARD, arg)


def parse_category(text: str) -> Category:
    """Parse a category string, e.g. ``"(S\\NP)/NP"``.

    Slashes associate left: ``S\\NP/NP`` means ``(S\\NP)/NP``.
    """
    tokens = _lex(text)
    category, rest = _parse_tokens(tokens)
    if rest:
        raise ValueError(f"trailing tokens in category {text!r}: {rest}")
    return category


def _lex(text: str) -> list[str]:
    tokens = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
        elif char in "()/\\":
            tokens.append(char)
            index += 1
        elif char.isalpha():
            start = index
            while index < len(text) and text[index].isalnum():
                index += 1
            tokens.append(text[start:index])
        else:
            raise ValueError(f"bad character {char!r} in category {text!r}")
    return tokens


def _parse_tokens(tokens: list[str]) -> tuple[Category, list[str]]:
    left, rest = _parse_atom(tokens)
    while rest and rest[0] in (FORWARD, BACKWARD):
        slash = rest[0]
        right, rest = _parse_atom(rest[1:])
        left = Func(left, slash, right)
    return left, rest


def _parse_atom(tokens: list[str]) -> tuple[Category, list[str]]:
    if not tokens:
        raise ValueError("unexpected end of category")
    head = tokens[0]
    if head == "(":
        inner, rest = _parse_tokens(tokens[1:])
        if not rest or rest[0] != ")":
            raise ValueError("unbalanced parenthesis in category")
        return inner, rest[1:]
    if head in (FORWARD, BACKWARD, ")"):
        raise ValueError(f"unexpected token {head!r} in category")
    return Prim(head), tokens[1:]
