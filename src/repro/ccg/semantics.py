"""Lambda-calculus semantic terms with predicate applications.

A lexical entry pairs its category with one of these terms; combinators
apply and compose them; beta reduction normalizes the result.  Fully
reduced sentence semantics contain only :class:`Call` (predicate
application) and :class:`Const` nodes — the nested-predicate logical forms
of the paper (Figure 2).

Provenance metadata rides along for the disambiguation checks:

* every :class:`Const` records the token span it came from;
* every :class:`Call` records the token index of the lexical item that
  introduced it (``trigger``) and inherits a ``flags`` set (e.g. the
  distributed-coordination reading is flagged ``distributed``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator

_fresh_counter = itertools.count()


class Sem:
    """Base class for semantic terms."""

    def sort_key(self) -> str:
        """A stable, provenance-free ordering key (the structural
        signature).  Sorting LF lists by it makes survivor order — and
        everything derived from it: session diffs, JSON snapshots —
        reproducible across runs and processes."""
        return signature(self)


@dataclass(frozen=True)
class Var(Sem):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Sem):
    """A grounded constant: a noun phrase, number, or function name."""

    value: str
    span: tuple[int, int] | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class Lam(Sem):
    param: str
    body: Sem

    def __str__(self) -> str:
        return f"λ{self.param}.{self.body}"


@dataclass(frozen=True)
class App(Sem):
    fn: Sem
    arg: Sem

    def __str__(self) -> str:
        return f"({self.fn} {self.arg})"


@dataclass(frozen=True)
class Call(Sem):
    """A predicate application, e.g. ``@Is('checksum', '0')``."""

    pred: str
    args: tuple[Sem, ...]
    trigger: int | None = field(default=None, compare=False)
    flags: frozenset[str] = field(default=frozenset(), compare=False)

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"@{self.pred}({rendered})"


# -- substitution and reduction ---------------------------------------------

def free_vars(term: Sem) -> set[str]:
    if isinstance(term, Var):
        return {term.name}
    if isinstance(term, Lam):
        return free_vars(term.body) - {term.param}
    if isinstance(term, App):
        return free_vars(term.fn) | free_vars(term.arg)
    if isinstance(term, Call):
        result: set[str] = set()
        for arg in term.args:
            result |= free_vars(arg)
        return result
    return set()


def _fresh_name(base: str) -> str:
    return f"{base}_{next(_fresh_counter)}"


def substitute(term: Sem, name: str, value: Sem) -> Sem:
    """Capture-avoiding substitution of ``value`` for ``Var(name)``."""
    if isinstance(term, Var):
        return value if term.name == name else term
    if isinstance(term, Const):
        return term
    if isinstance(term, Lam):
        if term.param == name:
            return term  # the binder shadows the substitution
        if term.param in free_vars(value):
            renamed = _fresh_name(term.param)
            body = substitute(term.body, term.param, Var(renamed))
            return Lam(renamed, substitute(body, name, value))
        return Lam(term.param, substitute(term.body, name, value))
    if isinstance(term, App):
        return App(substitute(term.fn, name, value), substitute(term.arg, name, value))
    if isinstance(term, Call):
        return replace(
            term, args=tuple(substitute(arg, name, value) for arg in term.args)
        )
    raise TypeError(f"unknown term {term!r}")


def reduce_term(term: Sem, budget: int = 500) -> Sem:
    """Normalize by repeated beta reduction (bounded to guarantee halt)."""
    for _ in range(budget):
        reduced, changed = _step(term)
        if not changed:
            return reduced
        term = reduced
    return term


def _step(term: Sem) -> tuple[Sem, bool]:
    if isinstance(term, App):
        if isinstance(term.fn, Lam):
            return substitute(term.fn.body, term.fn.param, term.arg), True
        fn, changed_fn = _step(term.fn)
        if changed_fn:
            return App(fn, term.arg), True
        arg, changed_arg = _step(term.arg)
        if changed_arg:
            return App(term.fn, arg), True
        return term, False
    if isinstance(term, Lam):
        body, changed = _step(term.body)
        return (Lam(term.param, body), changed)
    if isinstance(term, Call):
        new_args = []
        changed_any = False
        for arg in term.args:
            new_arg, changed = _step(arg)
            new_args.append(new_arg)
            changed_any = changed_any or changed
        if changed_any:
            return replace(term, args=tuple(new_args)), True
        return term, False
    return term, False


# -- provenance stamping and inspection -------------------------------------

def stamp(term: Sem, index: int) -> Sem:
    """Attach token provenance to a lexical entry's template semantics.

    Constants with no span get span ``(index, index+1)``; calls with no
    trigger get ``trigger=index``.
    """
    if isinstance(term, Const):
        return term if term.span is not None else replace(term, span=(index, index + 1))
    if isinstance(term, Lam):
        return Lam(term.param, stamp(term.body, index))
    if isinstance(term, App):
        return App(stamp(term.fn, index), stamp(term.arg, index))
    if isinstance(term, Call):
        stamped_args = tuple(stamp(arg, index) for arg in term.args)
        trigger = term.trigger if term.trigger is not None else index
        return replace(term, args=stamped_args, trigger=trigger)
    return term


#: Distinguishes "not cached yet" from a cached None result.
_UNSET = object()


def span_of(term: Sem) -> tuple[int, int] | None:
    """The token span covered by ``term``: min/max over constant spans.

    Cached on the node (terms are immutable): the winnow checks probe the
    same argument subtrees thousands of times per warm sweep.
    """
    d = term.__dict__
    span = d.get("_span", _UNSET)
    if span is not _UNSET:
        return span
    spans = [const.span for const in consts_of(term) if const.span is not None]
    if not spans:
        span = None
    else:
        span = (min(start for start, _ in spans), max(end for _, end in spans))
    d["_span"] = span
    return span


def consts_of(term: Sem) -> tuple[Const, ...]:
    """:func:`iter_consts` materialized once per node (cached traversal)."""
    d = term.__dict__
    consts = d.get("_consts")
    if consts is None:
        consts = d["_consts"] = tuple(iter_consts(term))
    return consts


def calls_of(term: Sem) -> tuple[Call, ...]:
    """:func:`iter_calls` materialized once per node (cached traversal)."""
    d = term.__dict__
    calls = d.get("_calls")
    if calls is None:
        calls = d["_calls"] = tuple(iter_calls(term))
    return calls


def iter_consts(term: Sem) -> Iterator[Const]:
    if isinstance(term, Const):
        yield term
    elif isinstance(term, Lam):
        yield from iter_consts(term.body)
    elif isinstance(term, App):
        yield from iter_consts(term.fn)
        yield from iter_consts(term.arg)
    elif isinstance(term, Call):
        for arg in term.args:
            yield from iter_consts(arg)


def iter_calls(term: Sem) -> Iterator[Call]:
    if isinstance(term, Call):
        yield term
        for arg in term.args:
            yield from iter_calls(arg)
    elif isinstance(term, Lam):
        yield from iter_calls(term.body)
    elif isinstance(term, App):
        yield from iter_calls(term.fn)
        yield from iter_calls(term.arg)


def is_grounded(term: Sem) -> bool:
    """True when the term is fully reduced to calls and constants."""
    if isinstance(term, Const):
        return True
    if isinstance(term, Call):
        return all(is_grounded(arg) for arg in term.args)
    return False


def signature(term: Sem) -> str:
    """Structural identity ignoring provenance metadata (for dedup).

    Cached on the node: survivor sorting, journal keys, and parity digests
    re-render the same forms constantly, and terms are immutable.
    """
    d = term.__dict__
    sig = d.get("_sig")
    if sig is None:
        sig = d["_sig"] = _signature_of(term)
    return sig


def _signature_of(term: Sem) -> str:
    if isinstance(term, Const):
        return f"'{term.value}'"
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Lam):
        return f"λ{term.param}.{signature(term.body)}"
    if isinstance(term, App):
        return f"({signature(term.fn)} {signature(term.arg)})"
    if isinstance(term, Call):
        rendered = ",".join(signature(arg) for arg in term.args)
        return f"@{term.pred}({rendered})"
    raise TypeError(f"unknown term {term!r}")
