"""The CCG lexicon: general English glue plus domain-specific entries.

Mirrors §3 of the paper: a small hand-crafted lexicon encodes how RFCs use
words ("is" as assignment, "of" as field access, "starting with" as a range
anchor).  Entries are grouped (``core``/``icmp``/``igmp``/``ntp``/``bfd``)
so the incremental-lexicon accounting of §6.3-6.4 can be reported from the
live registry.

Entries flagged ``overgen=True`` deliberately over-generate, reproducing the
CCG behaviours §4.1 blames for multiple logical forms:

* the swapped-argument conditional (``@If(B,A)``) — CCG's "order-sensitive
  predicate arguments";
* the reversed assignment (``@Is(value, target)``);
* ``of`` taking a sentential complement (``A of (B is C)``) — "predicate
  order-sensitivity";
* swapped adverbial advice (``@AdvBefore(main, advice)``).

The disambiguation checks (§4.2) must remove every LF these entries create.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .categories import Category, parse_category
from .semantics import App, Call, Const, Lam, Sem, Var, signature


def _lam(*params: str, body: Sem) -> Sem:
    for param in reversed(params):
        body = Lam(param, body)
    return body


def _call(pred: str, *args: Sem, flags: frozenset[str] = frozenset()) -> Call:
    return Call(pred, tuple(args), flags=flags)


x, y, z, f, v, d, m, s, a = (Var("x"), Var("y"), Var("z"), Var("f"), Var("v"),
                             Var("d"), Var("m"), Var("s"), Var("a"))

IDENTITY = Lam("x", x)
VP_IDENTITY = Lam("f", f)


@dataclass(frozen=True)
class LexEntry:
    """One lexical entry: a phrase, its category, and its semantics."""

    phrase: str
    category: Category
    sem: Sem
    group: str = "core"
    overgen: bool = False

    @property
    def words(self) -> tuple[str, ...]:
        return tuple(self.phrase.lower().split())


class Lexicon:
    """Phrase → entries lookup with multiword support.

    Three indexes are maintained incrementally on ``add``:

    * ``_by_words`` — exact phrase tuple → entry bucket (O(1) ``lookup``);
    * ``_lengths_by_first`` — first word → the set of phrase lengths any
      entry starting with that word has, so a chart never probes a span
      whose (first word, length) combination cannot match;
    * ``_trie`` — a phrase trie (word → child node, entries at terminal
      nodes) that :meth:`iter_matches` walks to find *every* phrase match
      starting at a token position in one pass, instead of one hash probe
      per candidate span length.

    ``add`` deduplicates: an entry identical to one already present (same
    phrase, category, semantic signature, group, and overgen flag) is
    dropped, so repeated ``extend`` calls cannot inflate the lexicon — and
    :meth:`fingerprint` stays stable under such re-adds, keeping parse-cache
    keys honest.
    """

    #: Trie-node key under which a terminal node stores its entry list
    #: (cannot collide with a word, which is always a non-empty string).
    _TRIE_ENTRIES = ""

    def __init__(self, entries: list[LexEntry] | None = None) -> None:
        self._by_words: dict[tuple[str, ...], list[LexEntry]] = {}
        self._lengths_by_first: dict[str, set[int]] = {}
        self._trie: dict = {}
        self._entry_keys: set[tuple] = set()
        self.max_phrase_words = 1
        self._fingerprint: str | None = None
        for entry in entries or []:
            self.add(entry)

    @staticmethod
    def _entry_key(entry: LexEntry) -> tuple:
        return (entry.words, str(entry.category), signature(entry.sem),
                entry.group, entry.overgen)

    def add(self, entry: LexEntry) -> None:
        key = self._entry_key(entry)
        if key in self._entry_keys:
            return  # identical entry already present
        self._entry_keys.add(key)
        words = entry.words
        self._by_words.setdefault(words, []).append(entry)
        self._lengths_by_first.setdefault(words[0], set()).add(len(words))
        node = self._trie
        for word in words:
            node = node.setdefault(word, {})
        node.setdefault(self._TRIE_ENTRIES, []).append(entry)
        self.max_phrase_words = max(self.max_phrase_words, len(words))
        self._fingerprint = None

    def fingerprint(self) -> str:
        """Content hash of every entry (phrase, category, semantics, flags).

        Two lexicons with the same entries share a fingerprint regardless of
        construction order; any `add` changes it.  Parse caches use this as
        part of their key so cached parses are never served across different
        grammars."""
        if self._fingerprint is None:
            lines = sorted(
                f"{entry.phrase.lower()}\t{entry.category}\t"
                f"{signature(entry.sem)}\t{entry.group}\t{int(entry.overgen)}"
                for entry in self.entries()
            )
            digest = hashlib.sha1("\n".join(lines).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def extend(self, entries: list[LexEntry]) -> None:
        for entry in entries:
            self.add(entry)

    def lookup(self, words: list[str]) -> list[LexEntry]:
        return list(self._by_words.get(tuple(word.lower() for word in words), []))

    def phrase_lengths(self, first_word: str) -> tuple[int, ...]:
        """The phrase lengths (word counts) of entries starting with
        ``first_word`` (already lowercased), ascending; ``()`` when none."""
        lengths = self._lengths_by_first.get(first_word)
        return tuple(sorted(lengths)) if lengths else ()

    def iter_matches(self, words_lower: list[str], start: int):
        """Walk the phrase trie from ``words_lower[start]``.

        Yields ``(end, entries)`` for every lexicon phrase matching
        ``words_lower[start:end]``, shortest first — one trie walk replaces
        ``max_phrase_words`` separate :meth:`lookup` probes.  ``words_lower``
        must already be lowercased (the chunker emits trie-ready tokens
        whose ``lower`` is precomputed).
        """
        node = self._trie
        entries_key = self._TRIE_ENTRIES
        for position in range(start, len(words_lower)):
            node = node.get(words_lower[position])
            if node is None:
                return
            entries = node.get(entries_key)
            if entries:
                yield position + 1, entries

    def entries(self) -> list[LexEntry]:
        return [entry for bucket in self._by_words.values() for entry in bucket]

    def count_by_group(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries():
            counts[entry.group] = counts.get(entry.group, 0) + 1
        return counts

    def without_overgen(self) -> "Lexicon":
        return Lexicon([entry for entry in self.entries() if not entry.overgen])


def _entry(phrase: str, category: str, sem: Sem, group: str = "core",
           overgen: bool = False) -> LexEntry:
    return LexEntry(phrase, parse_category(category), sem, group, overgen)


def core_entries() -> list[LexEntry]:
    """General English glue shared by every RFC."""
    entries: list[LexEntry] = []

    # Determiners are semantically vacuous.
    for det in ("the", "a", "an", "this", "that", "these", "those", "its",
                "their", "any", "each", "such"):
        entries.append(_entry(det, "NP/NP", IDENTITY))

    # Copulas: assignment (the RFC reading of "is") plus the auxiliary
    # reading used by passives ("is reversed").
    for copula in ("is", "are", "was", "were", "be"):
        entries.append(
            _entry(copula, "(S\\NP)/NP", _lam("x", "y", body=_call("Is", y, x)))
        )
        entries.append(_entry(copula, "(S\\NP)/(S\\NP)", VP_IDENTITY))
        # Over-generation: the reversed assignment.
        entries.append(
            _entry(copula, "(S\\NP)/NP", _lam("x", "y", body=_call("Is", x, y)),
                   overgen=True)
        )

    # Modal + copula idioms.  "may be" is the optional assignment whose
    # naive reading creates the paper's under-specification bug.
    for modal in ("must be", "should be", "shall be", "will be"):
        entries.append(
            _entry(modal, "(S\\NP)/NP", _lam("x", "y", body=_call("Is", y, x)))
        )
        entries.append(_entry(modal, "(S\\NP)/(S\\NP)", VP_IDENTITY))
    entries.append(
        _entry("may be", "(S\\NP)/NP",
               _lam("x", "y", body=_call("May", _call("Is", y, x))))
    )
    # "may be <participle>": optionality wraps the action too.
    entries.append(
        _entry("may be", "(S\\NP)/(S\\NP)",
               _lam("f", "y", body=_call("May", App(f, y))))
    )
    entries.append(_entry("can be", "(S\\NP)/(S\\NP)", VP_IDENTITY))
    # Bare modals before verb phrases: "MUST cease", "may generate".  "may"
    # always contributes @May so optional behaviour stays visible to codegen
    # and unit testing (the §6.5 under-specification discovery).
    for modal in ("must", "should", "shall", "will", "can"):
        entries.append(_entry(modal, "(S\\NP)/(S\\NP)", VP_IDENTITY))
    entries.append(
        _entry("may", "(S\\NP)/(S\\NP)",
               _lam("f", "y", body=_call("May", App(f, y))))
    )

    # Prepositions as noun-phrase modifiers.
    entries.append(
        _entry("of", "(NP\\NP)/NP", _lam("x", "y", body=_call("Of", y, x)))
    )
    # Over-generation: "of" with a sentential complement lets @Is nest
    # beneath @Of — the "A of (B is C)" reading of §4.1.
    entries.append(
        _entry("of", "(NP\\NP)/S", _lam("x", "y", body=_call("Of", y, x)),
               overgen=True)
    )
    entries.append(
        _entry("in", "(NP\\NP)/NP", _lam("x", "y", body=_call("In", y, x)))
    )
    entries.append(
        _entry("from", "(NP\\NP)/NP", _lam("x", "y", body=_call("From", y, x)))
    )
    entries.append(
        _entry("for", "(NP\\NP)/NP", _lam("x", "y", body=_call("For", y, x)))
    )
    entries.append(
        _entry("with", "(NP\\NP)/NP", _lam("x", "y", body=_call("With", y, x)))
    )

    # "to" heads an argument PP ("set ... to 0") and purpose clauses.
    entries.append(_entry("to", "PP/NP", IDENTITY))
    entries.append(
        _entry("to", "(S/S)/S", _lam("x", "y", body=_call("Goal", x, y)))
    )
    entries.append(
        _entry("to", "(S/S)/S", _lam("x", "y", body=_call("Goal", y, x)),
               overgen=True)
    )

    # Sentence-initial adverbial "for": aspect-style advice (@AdvBefore).
    entries.append(
        _entry("for", "(S/S)/S", _lam("x", "y", body=_call("AdvBefore", x, y)))
    )
    entries.append(
        _entry("for", "(S/S)/S", _lam("x", "y", body=_call("AdvBefore", y, x)),
               overgen=True)
    )

    # Conditionals, with the over-generated swapped argument order of §4.1.
    for cond in ("if", "when"):
        entries.append(
            _entry(cond, "(S/S)/S", _lam("x", "y", body=_call("If", x, y)))
        )
        entries.append(
            _entry(cond, "(S/S)/S", _lam("x", "y", body=_call("If", y, x)),
                   overgen=True)
        )
        # Trailing conditional: "X is done when Y".
        entries.append(
            _entry(cond, "(S\\S)/S", _lam("x", "y", body=_call("If", x, y)))
        )

    # Coordination markers; the chart's coordination rule consumes these.
    entries.append(_entry("and", "CONJ", Const("and")))
    entries.append(_entry("or", "CONJ", Const("or")))
    entries.append(_entry(",", "CONJ", Const("and")))
    # Comma as pure punctuation: clause separator after S/S, before a VP,
    # and the Oxford comma absorbing into a following conjunction phrase
    # ("A, B, and C").
    entries.append(_entry(",", "(S/S)\\(S/S)", VP_IDENTITY))
    entries.append(_entry(",", "(S\\NP)/(S\\NP)", VP_IDENTITY))
    entries.append(_entry(",", "(S\\S)/(S\\S)", VP_IDENTITY))
    entries.append(_entry(",", "(NP\\NP)/(NP\\NP)", VP_IDENTITY))
    entries.append(_entry(";", "(S\\S)/S", _lam("x", "y", body=_call("And", y, x))))

    # Field-test idiom "code = 0" and arithmetic "+".
    entries.append(
        _entry("=", "(S\\NP)/NP", _lam("x", "y", body=_call("Is", y, x)))
    )
    entries.append(
        _entry("+", "(NP\\NP)/NP", _lam("x", "y", body=_call("And", y, x)))
    )
    entries.append(
        _entry("plus", "(NP\\NP)/NP", _lam("x", "y", body=_call("And", y, x)))
    )

    # Vacuous adverbs: pre-verbal, pre-nominal, trailing, and modifying a
    # reduced relative ("fully specified").
    for adverb in ("simply", "only", "also", "then", "currently", "always",
                   "actually", "typically", "directly", "fully",
                   "absolutely", "last"):
        entries.append(_entry(adverb, "(S\\NP)/(S\\NP)", VP_IDENTITY))
        entries.append(_entry(adverb, "NP/NP", IDENTITY))
        entries.append(_entry(adverb, "S\\S", Lam("s", s)))
        entries.append(_entry(adverb, "(NP\\NP)/(NP\\NP)", VP_IDENTITY))

    # Common constants.
    entries.append(_entry("zero", "NP", Const("0")))
    entries.append(_entry("zeros", "NP", Const("0")))
    entries.append(_entry("one", "NP", Const("1")))
    entries.append(_entry("nonzero", "NP", Const("nonzero")))

    # Pronouns and demonstratives resolve against context in codegen.
    for pronoun in ("it", "they", "them", "this", "these"):
        entries.append(_entry(pronoun, "NP", Const(pronoun)))

    # Negation wraps the clause.
    entries.append(
        _entry("not", "(S\\NP)/(S\\NP)",
               _lam("f", "y", body=_call("Not", App(f, y))))
    )
    entries.append(
        _entry("no", "NP/NP", Lam("x", _call("Not", x)))
    )

    # Quantifiers are semantically vacuous for code generation.
    for quantifier in ("every", "all", "some", "several", "both"):
        entries.append(_entry(quantifier, "NP/NP", IDENTITY))

    # Trailing modifiers that add prose colour but no executable content:
    # passive agents ("by the host"), routes ("via the message"), manner
    # ("as a shorter path"), topic ("about messages"), time ("since
    # midnight"), direction ("to the process", "on receipt").
    for preposition in ("by", "via", "as", "about", "since", "to", "on", "at",
                       "before", "after", "during", "for", "with", "within"):
        entries.append(
            _entry(preposition, "(S\\S)/NP", _lam("x", "s", body=s))
        )
    # The same words as vacuous NP post-modifiers ("messages about messages").
    for preposition in ("by", "via", "about", "since", "on", "at"):
        entries.append(
            _entry(preposition, "(NP\\NP)/NP", _lam("x", "y", body=y))
        )

    # Trailing purpose clause: "... is used by the host to match ...".
    entries.append(_entry("to", "(S\\S)/S", _lam("x", "s", body=s)))
    entries.append(_entry("to", "(S\\S)/(S\\NP)", _lam("x", "s", body=s)))

    # Further vacuous prose glue.
    entries.append(_entry("in", "(S\\S)/NP", _lam("x", "s", body=s)))
    entries.append(_entry("using", "(S\\S)/NP", _lam("x", "s", body=s)))
    entries.append(_entry("as if", "(S\\S)/S", _lam("x", "s", body=s)))
    entries.append(_entry("processing", "(NP\\NP)/NP", _lam("x", "y", body=y)))
    entries.append(_entry("to aid in", "(S\\S)/NP", _lam("x", "s", body=s)))
    # Perception/embedding verbs surface their complement clause: "the
    # gateway finds the TTL field is zero" means the condition itself;
    # with a plain object ("finds a problem") it is a detection action.
    entries.append(_entry("finds", "(S\\NP)/S", _lam("s", "y", body=s)))
    entries.append(
        _entry("finds", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("find"), x)))
    )

    # Possession: "it does not have the buffer space".
    for verb_form in ("have", "has", "had"):
        entries.append(
            _entry(verb_form, "(S\\NP)/NP", _lam("x", "y", body=_call("With", y, x)))
        )
    for aux in ("does", "do", "did"):
        entries.append(_entry(aux, "(S\\NP)/(S\\NP)", VP_IDENTITY))

    # Locative predication: "they are assumed to be in the first 64 bits".
    entries.append(
        _entry("be in", "(S\\NP)/NP", _lam("x", "y", body=_call("In", y, x)))
    )

    # Trailing advice: "... is padded ... for computing the checksum" —
    # execute the adverbial clause before the main one (@AdvBefore).
    entries.append(
        _entry("for", "(S\\S)/S", _lam("x", "s", body=_call("AdvBefore", x, s)))
    )

    # Relative clauses over full clauses ("that it discards" via raising).
    entries.append(
        _entry("that", "(NP\\NP)/(S/NP)", _lam("r", "y", body=y))
    )
    entries.append(
        _entry("which", "(NP\\NP)/(S/NP)", _lam("r", "y", body=y))
    )

    return entries


def icmp_entries() -> list[LexEntry]:
    """Domain entries added for RFC 792 (the paper's 71-entry increment)."""
    entries: list[LexEntry] = []

    def verb(phrase: str, action: str) -> None:
        """An action verb: passive participle, imperative, and gerund."""
        entries.append(
            _entry(phrase, "S\\NP", Lam("y", _call("Action", Const(action), y)),
                   group="icmp")
        )

    def imperative(phrase: str, action: str) -> None:
        entries.append(
            _entry(phrase, "S/NP", Lam("x", _call("Action", Const(action), x)),
                   group="icmp")
        )
        # Active transitive with the (framework-implicit) subject dropped:
        # "the gateway may send a message" → @Action('send', message).
        entries.append(
            _entry(phrase, "(S\\NP)/NP",
                   _lam("x", "y", body=_call("Action", Const(action), x)),
                   group="icmp")
        )

    # Passive participles: "the addresses are reversed", "the checksum
    # recomputed", "the packet is discarded" ...
    verb("reversed", "reverse")
    verb("exchanged", "reverse")
    verb("recomputed", "recompute")
    verb("discarded", "discard")
    verb("sent", "send")
    verb("detected", "detect")
    verb("zeroed", "zero")
    verb("incremented", "increment")

    # Imperatives / infinitives: "To form an echo reply message ...".
    imperative("form", "form")
    imperative("compute", "compute")
    imperative("computing", "compute")
    imperative("forming", "form")
    imperative("recompute", "recompute")
    imperative("reverse", "reverse")
    imperative("exchange", "reverse")
    imperative("send", "send")
    imperative("discard", "discard")
    imperative("take", "take")

    # Over-generation: an action whose arguments land swapped — the badly
    # typed @Action('0', 'compute')-style LFs the type check removes.
    entries.append(
        _entry("computing", "S/NP", Lam("x", _call("Action", x, Const("compute"))),
               group="icmp", overgen=True)
    )
    entries.append(
        _entry("set", "S/NP", Lam("x", _call("Action", x, Const("set"))),
               group="icmp", overgen=True)
    )

    # "set X to Y" / "the sender sets X to Y" / "X is set to Y" /
    # "X changed to Y".
    entries.append(
        _entry("set", "(S/PP)/NP", _lam("x", "v", body=_call("Is", x, v)),
               group="icmp")
    )
    for set_form in ("set", "sets"):
        entries.append(
            _entry(set_form, "((S\\NP)/PP)/NP",
                   _lam("x", "v", "y", body=_call("Is", x, v)), group="icmp")
        )
    entries.append(
        _entry("set to", "(S\\NP)/NP", _lam("v", "y", body=_call("Is", y, v)),
               group="icmp")
    )
    entries.append(
        _entry("changed to", "(S\\NP)/NP", _lam("v", "y", body=_call("Is", y, v)),
               group="icmp")
    )
    entries.append(
        _entry("changed", "(S\\NP)/PP", _lam("v", "y", body=_call("Is", y, v)),
               group="icmp")
    )

    # "must be returned in X": copy an object into a destination.
    entries.append(
        _entry("returned", "(S\\NP)/PP",
               _lam("d", "y", body=_call("Action", Const("return"), y, d)),
               group="icmp")
    )
    entries.append(
        _entry("returned", "S\\NP",
               Lam("y", _call("Action", Const("return"), y)), group="icmp")
    )
    entries.append(_entry("in", "PP/NP", IDENTITY, group="icmp"))

    # "the data received in the echo message": same containment semantics as
    # the bare "in" modifier, so the two derivations collapse in the chart.
    entries.append(
        _entry("received in", "(NP\\NP)/NP",
               _lam("x", "y", body=_call("In", y, x)), group="icmp")
    )

    # "the received data is padded with one octet of zeros".
    entries.append(
        _entry("padded with", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("pad"), y, x)),
               group="icmp")
    )

    # Checksum-range anchor: "... starting with the ICMP Type".
    entries.append(
        _entry("starting with", "(S\\S)/NP",
               _lam("x", "s", body=_call("StartsWith", s, x)), group="icmp")
    )
    entries.append(
        _entry("starting with", "(NP\\NP)/NP",
               _lam("x", "y", body=_call("StartsWith", y, x)), group="icmp")
    )
    entries.append(
        _entry("starting at", "(NP\\NP)/NP",
               _lam("x", "y", body=_call("StartsWith", y, x)), group="icmp")
    )

    # Field-description verbs.
    entries.append(
        _entry("identifies", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Is", y, x)), group="icmp")
    )
    entries.append(
        _entry("indicates", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Is", y, x)), group="icmp")
    )
    entries.append(
        _entry("contains", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Is", y, x)), group="icmp")
    )
    entries.append(
        _entry("matches", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Is", y, x)), group="icmp")
    )

    # Relative/descriptive clauses.
    entries.append(
        _entry("where", "(NP\\NP)/S", _lam("s", "y", body=_call("Where", y, s)),
               group="icmp")
    )
    entries.append(
        _entry("to aid in", "(NP\\NP)/NP", _lam("x", "y", body=y), group="icmp")
    )
    entries.append(
        _entry("matching", "NP/NP", IDENTITY, group="icmp")
    )

    # Frequent vacuous glue in RFC 792 prose.
    entries.append(_entry("value", "NP/NP", IDENTITY, group="icmp"))
    entries.append(_entry("value of", "NP/NP", IDENTITY, group="icmp"))
    entries.append(_entry("field", "NP\\NP", Lam("y", y), group="icmp"))

    return entries


def igmp_entries() -> list[LexEntry]:
    """The small increment needed for RFC 1112 (paper: 8 entries)."""
    return [
        _entry("sent to", "(S\\NP)/NP",
               _lam("d", "y", body=_call("Action", Const("send"), y, d)),
               group="igmp"),
        _entry("addressed to", "(S\\NP)/NP",
               _lam("d", "y", body=_call("Action", Const("send"), y, d)),
               group="igmp"),
        _entry("joined", "S\\NP",
               Lam("y", _call("Action", Const("join"), y)), group="igmp"),
        _entry("reports", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("report"), y, x)),
               group="igmp"),
        _entry("responds with", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("respond"), y, x)),
               group="igmp"),
        _entry("ignored", "S\\NP",
               Lam("y", _call("Action", Const("ignore"), y)), group="igmp"),
        _entry("carries", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Is", y, x)), group="igmp"),
        _entry("emitted", "S\\NP",
               Lam("y", _call("Action", Const("send"), y)), group="igmp"),
    ]


def ntp_entries() -> list[LexEntry]:
    """The increment for RFC 1059 (paper: 5 entries)."""
    return [
        # Table 11: "when the peer timer reaches the value of the timer
        # threshold variable" — a >= comparison.
        _entry("reaches", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Reach", y, x)), group="ntp"),
        # "The timeout procedure is called in client mode and symmetric mode"
        _entry("called in", "(S\\NP)/NP",
               _lam("m", "y", body=_call("CalledIn", y, m)), group="ntp"),
        _entry("is called in", "(S\\NP)/NP",
               _lam("m", "y", body=_call("CalledIn", y, m)), group="ntp"),
        _entry("transmitted as", "(S\\NP)/NP",
               _lam("x", "y", body=_call("EncapsulatedIn", y, x)), group="ntp"),
        _entry("encapsulated in", "(S\\NP)/NP",
               _lam("x", "y", body=_call("EncapsulatedIn", y, x)), group="ntp"),
    ]


def bfd_entries() -> list[LexEntry]:
    """The increment for RFC 5880 state management (paper: 15 entries)."""
    return [
        _entry("used to select", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("select"), x, y)),
               group="bfd"),
        _entry("be used to select", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("select"), x, y)),
               group="bfd"),
        _entry("associated", "S\\NP",
               Lam("y", _call("Action", Const("associate"), y)), group="bfd"),
        _entry("with which", "(NP\\NP)/S",
               _lam("s", "y", body=_call("Where", y, s)), group="bfd"),
        _entry("found", "S\\NP",
               Lam("y", _call("Action", Const("find"), y)), group="bfd"),
        _entry("no", "NP/NP", Lam("x", _call("Not", x)), group="bfd"),
        _entry("cease", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("cease"), x)),
               group="bfd"),
        _entry("ceases", "(S\\NP)/NP",
               _lam("x", "y", body=_call("Action", Const("cease"), x)),
               group="bfd"),
        _entry("active on", "(S\\NP)/NP",
               _lam("x", "y", body=_call("ActiveOn", y, x)), group="bfd"),
        _entry("receipt of", "NP/NP", IDENTITY, group="bfd"),
        _entry("set", "(S/PP)/NP", _lam("x", "v", body=_call("Is", x, v)),
               group="bfd"),
        _entry("update", "(S/NP)", Lam("x", _call("Action", Const("update"), x)),
               group="bfd"),
        _entry("initialized to", "(S\\NP)/NP",
               _lam("v", "y", body=_call("Is", y, v)), group="bfd"),
        _entry("transitions to", "(S\\NP)/NP",
               _lam("v", "y", body=_call("Is", y, v)), group="bfd"),
        _entry("remains", "(S\\NP)/NP",
               _lam("v", "y", body=_call("Is", y, v)), group="bfd"),
    ]


def build_lexicon(groups: tuple[str, ...] = ("core", "icmp", "igmp", "ntp", "bfd"),
                  include_overgen: bool = True) -> Lexicon:
    """Assemble the lexicon from the requested entry groups."""
    builders = {
        "core": core_entries,
        "icmp": icmp_entries,
        "igmp": igmp_entries,
        "ntp": ntp_entries,
        "bfd": bfd_entries,
    }
    lexicon = Lexicon()
    for group in groups:
        for entry in builders[group]():
            if entry.overgen and not include_overgen:
                continue
            lexicon.add(entry)
    return lexicon
