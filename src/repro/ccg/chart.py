"""CKY chart parsing over CCG categories with lambda semantics.

This is the **reference parser backend**: the plain CKY recognizer every
other backend is measured against (see :mod:`repro.parsing` for the backend
protocol and the optimized, category-indexed implementation).  It folds the
pure combinator rules of :mod:`repro.ccg.combinators` over the full
cell×cell cross product — simple, obviously correct, and deliberately left
unoptimized so parity bugs in faster backends have a fixed point to diff
against.

A sentence's parse yields every grounded logical form derivable over the
full span with root category S, or NP for the header-field fragments RFCs
are full of.  Zero results mean the sentence failed to parse (§4.1 "zero
logical forms"); more than one means ambiguity to winnow (§4.2).

Cells are bounded by ``max_cell_items``.  Items rejected by the bound are
*counted* on :attr:`ParseResult.dropped_items` (and surfaced as the
``pruned`` flag) rather than silently vanishing — winnow provenance must
know when the LF set it saw was truncated.

Two pieces here are shared plumbing rather than reference-only code:
:func:`lexical_span_items` (multiword lexical matching over the token
stream) and :func:`strip_terminal_punct` are consumed verbatim by the
indexed backend, so both backends see exactly the same lexical layer —
any output divergence is therefore attributable to combination order,
which is what the parity gate isolates.  The reference combination loop
itself stays deliberately dumb: the agenda-driven exploration, span
memoization, and deferred term construction all live in
:mod:`repro.parsing.indexed` (DESIGN.md §10) and are measured *against*
this module's fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nlp.tagger import TAG_VERB, tag_word
from ..nlp.tokenizer import (
    KIND_NOUN_PHRASE,
    KIND_NUMBER,
    KIND_PUNCT,
    KIND_STATEVAR,
    Token,
    normalize_term,
)
from .categories import NP, S, Category, backward, forward
from .combinators import all_productions
from .lexicon import Lexicon
from .semantics import (
    App,
    Call,
    Const,
    Lam,
    Sem,
    Var,
    is_grounded,
    reduce_term,
    signature,
    stamp,
)

MAX_CELL_ITEMS = 2000


@dataclass(frozen=True)
class Item:
    """One chart item: a category and its (unreduced) semantics."""

    category: Category
    sem: Sem


@dataclass
class ParseResult:
    """The outcome of parsing one sentence."""

    logical_forms: list[Sem]
    unknown_words: list[str] = field(default_factory=list)
    token_count: int = 0
    cells_filled: int = 0
    #: Items the per-cell budget rejected (0 = the chart was complete).
    dropped_items: int = 0
    #: The parser backend that produced this result ("" for ad-hoc parsers).
    backend: str = ""

    @property
    def count(self) -> int:
        return len(self.logical_forms)

    @property
    def pruned(self) -> bool:
        """True when the cell budget truncated the chart: the LF set (and
        everything winnowed from it) may be incomplete."""
        return self.dropped_items > 0


def default_items(token: Token, index: int, has_entries: bool) -> list[Item]:
    """Kind-based entries: chunked NPs, numbers, state variables.

    Words with no lexicon entry that tag as verbs get generic action
    readings (transitive and passive/intransitive) — CCG's unknown-word
    fallback.  The @Action type check later kills these readings
    wherever a better-typed alternative exists; sentences that only
    parse through them are descriptive prose headed for the
    non-actionable bin.
    """
    if token.kind in (KIND_NOUN_PHRASE, KIND_STATEVAR):
        return [Item(NP, Const(normalize_term(token.text), span=(index, index + 1)))]
    if token.kind == KIND_NUMBER:
        return [Item(NP, Const(token.text, span=(index, index + 1)))]
    if not has_entries and token.kind == "word" and tag_word(token.text) == TAG_VERB:
        action = Const(normalize_term(token.text), span=(index, index + 1))
        subject = Var("y")
        obj = Var("x")
        lower = token.lower
        items = [
            # Passive/intransitive: "the datagram is discarded".
            Item(
                backward(S, NP),
                Lam("y", Call("Action", (action, subject), trigger=index)),
            ),
            # Transitive: "the gateway notifies the host".
            Item(
                forward(backward(S, NP), NP),
                Lam(
                    "x",
                    Lam("y", Call("Action", (action, subject, obj), trigger=index)),
                ),
            ),
            # Imperative/infinitive: "To avoid the infinite regress ...".
            Item(
                forward(S, NP),
                Lam("x", Call("Action", (action, obj), trigger=index)),
            ),
        ]
        if lower.endswith("ed"):
            # Reduced relative / prenominal participle: "the received
            # data", "the network specified in ...".
            items.append(Item(backward(NP, NP), Lam("y", Var("y"))))
            items.append(Item(forward(NP, NP), Lam("x", Var("x"))))
        if lower.endswith("ing"):
            # Prenominal gerund ("the replying IP module") and
            # postnominal participle with object ("an integer
            # identifying the stratum level").
            items.append(Item(forward(NP, NP), Lam("x", Var("x"))))
            items.append(
                Item(
                    forward(backward(NP, NP), NP),
                    Lam("x", Lam("y", Var("y"))),
                )
            )
        return items
    return []


def lexical_span_items(
    lexicon: Lexicon, tokens: list[Token], start: int, end: int,
    entries=None,
) -> list[Item]:
    """Every lexical item covering ``tokens[start:end]``, in insertion order.

    Shared by both parser backends so their cells agree item-for-item:
    lexicon entries first (stamped with provenance), then the kind-based
    defaults for single tokens, then forward type-raised copies of every
    lexical NP (T>), which enable object-relative clauses ("that it
    discards") through composition with a transitive verb.

    ``entries`` short-circuits the lexicon lookup when the caller already
    fetched the span's entries (the indexed backend's trie walk does).
    """
    if entries is None:
        words = [token.text for token in tokens[start:end]]
        entries = lexicon.lookup(words)
    items = [
        Item(entry.category, stamp(entry.sem, start))
        for entry in entries
    ]
    if end - start == 1:
        items.extend(default_items(tokens[start], start, bool(items)))
    for item in list(items):
        if item.category == NP:
            raised = forward(S, backward(S, NP))
            items.append(Item(raised, Lam("p", App(Var("p"), item.sem))))
    return items


def strip_terminal_punct(tokens: list[Token]) -> list[Token]:
    """Drop sentence-final punctuation before parsing (both backends)."""
    return [token for token in tokens if not _is_terminal_punct(token)]


class CCGChartParser:
    """A CKY parser over a :class:`~repro.ccg.lexicon.Lexicon`.

    This is the reference :class:`~repro.parsing.backend.ParserBackend`
    implementation (``name = "reference"``).
    """

    #: Backend identity, part of every parse-cache key built over this
    #: parser (see ``ParseStage.fingerprint``).
    name = "reference"

    def __init__(self, lexicon: Lexicon, max_cell_items: int = MAX_CELL_ITEMS) -> None:
        self.lexicon = lexicon
        self.max_cell_items = max_cell_items

    # -- public API ---------------------------------------------------------
    def parse(self, tokens: list[Token]) -> ParseResult:
        tokens = strip_terminal_punct(tokens)
        if not tokens:
            return ParseResult(logical_forms=[], backend=self.name)
        chart, unknown, dropped = self._build_chart(tokens)
        length = len(tokens)
        forms: list[Sem] = []
        seen: set[str] = set()
        for item in chart.get((0, length), []):
            if item.category not in (S, NP):
                continue
            if not is_grounded(item.sem):
                continue
            key = signature(item.sem)
            if key not in seen:
                seen.add(key)
                forms.append(item.sem)
        return ParseResult(
            logical_forms=forms,
            unknown_words=unknown,
            token_count=length,
            cells_filled=len(chart),
            dropped_items=dropped,
            backend=self.name,
        )

    # -- chart construction ---------------------------------------------------
    def _build_chart(
        self, tokens: list[Token]
    ) -> tuple[dict[tuple[int, int], list[Item]], list[str], int]:
        length = len(tokens)
        chart: dict[tuple[int, int], list[Item]] = {}
        covered = [False] * length
        # Lexical spans (multiword phrases first-class).  The lexicon's
        # first-word/phrase-length index prunes multiword probes: a span
        # is only looked up when some entry starting with its first word
        # has exactly that length (single tokens always probe — the
        # kind-based default items exist regardless of the lexicon).
        lengths_by_start = [
            self.lexicon.phrase_lengths(token.lower) for token in tokens
        ]
        for span_len in range(1, min(self.lexicon.max_phrase_words, length) + 1):
            for start in range(0, length - span_len + 1):
                if span_len > 1 and span_len not in lengths_by_start[start]:
                    continue
                end = start + span_len
                items = lexical_span_items(self.lexicon, tokens, start, end)
                if items:
                    for position in range(start, end):
                        covered[position] = True
                    chart.setdefault((start, end), []).extend(items)
        unknown = [
            tokens[position].text
            for position in range(length)
            if not covered[position]
        ]
        # CKY combination.
        dropped = 0
        for span_len in range(2, length + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                cell = chart.setdefault((start, end), [])
                existing = {
                    (str(item.category), signature(item.sem)) for item in cell
                }
                for mid in range(start + 1, end):
                    for left in chart.get((start, mid), []):
                        for right in chart.get((mid, end), []):
                            for category, sem in all_productions(
                                left.category, left.sem,
                                right.category, right.sem,
                            ):
                                # Normalize eagerly so semantically identical
                                # derivations (CCG's spurious ambiguity)
                                # collapse instead of saturating the cell.
                                reduced = Item(category, reduce_term(sem))
                                key = (str(reduced.category), signature(reduced.sem))
                                if key in existing:
                                    continue
                                if len(cell) >= self.max_cell_items:
                                    dropped += 1
                                    continue
                                existing.add(key)
                                cell.append(reduced)
        return chart, unknown, dropped


def combine(left: Item, right: Item) -> list[Item]:
    """All items derivable from an adjacent pair (unreduced semantics).

    A thin :class:`Item` wrapper over the pure rules in
    :mod:`repro.ccg.combinators`, kept for the historical call signature.
    """
    return [
        Item(category, sem)
        for category, sem in all_productions(
            left.category, left.sem, right.category, right.sem
        )
    ]


def _is_terminal_punct(token: Token) -> bool:
    return token.kind == KIND_PUNCT and token.text in ".!?:"
