"""CKY chart parsing over CCG categories with lambda semantics.

Combinators implemented: forward/backward application, forward/backward
composition (harmless spurious derivations collapse under semantic dedup),
and coordination.  Coordination produces *both* readings of §4.1's
distributivity discussion: the grouped ``(A and B) is C`` and — for NP
conjuncts — the distributed ``(A is C) and (B is C)``, the latter flagged so
the distributivity check can prefer the grouped form.

A sentence's parse yields every grounded logical form derivable over the
full span with root category S, or NP for the header-field fragments RFCs
are full of.  Zero results mean the sentence failed to parse (§4.1 "zero
logical forms"); more than one means ambiguity to winnow (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nlp.tagger import TAG_VERB, tag_word
from ..nlp.tokenizer import (
    KIND_NOUN_PHRASE,
    KIND_NUMBER,
    KIND_PUNCT,
    KIND_STATEVAR,
    Token,
    normalize_term,
)
from .categories import (
    BACKWARD,
    CONJ,
    FORWARD,
    NP,
    S,
    Category,
    Func,
    backward,
    forward,
)
from .lexicon import Lexicon
from .semantics import (
    App,
    Call,
    Const,
    Lam,
    Sem,
    Var,
    is_grounded,
    reduce_term,
    signature,
    stamp,
)

MAX_CELL_ITEMS = 2000


@dataclass(frozen=True)
class Item:
    """One chart item: a category and its (unreduced) semantics."""

    category: Category
    sem: Sem


@dataclass
class ParseResult:
    """The outcome of parsing one sentence."""

    logical_forms: list[Sem]
    unknown_words: list[str] = field(default_factory=list)
    token_count: int = 0
    cells_filled: int = 0

    @property
    def count(self) -> int:
        return len(self.logical_forms)


class CCGChartParser:
    """A CKY parser over a :class:`~repro.ccg.lexicon.Lexicon`."""

    def __init__(self, lexicon: Lexicon, max_cell_items: int = MAX_CELL_ITEMS) -> None:
        self.lexicon = lexicon
        self.max_cell_items = max_cell_items

    # -- public API ---------------------------------------------------------
    def parse(self, tokens: list[Token]) -> ParseResult:
        tokens = [token for token in tokens if not _is_terminal_punct(token)]
        if not tokens:
            return ParseResult(logical_forms=[])
        chart, unknown = self._build_chart(tokens)
        length = len(tokens)
        forms: list[Sem] = []
        seen: set[str] = set()
        for item in chart.get((0, length), []):
            if item.category not in (S, NP):
                continue
            if not is_grounded(item.sem):
                continue
            key = signature(item.sem)
            if key not in seen:
                seen.add(key)
                forms.append(item.sem)
        return ParseResult(
            logical_forms=forms,
            unknown_words=unknown,
            token_count=length,
            cells_filled=len(chart),
        )

    # -- chart construction ---------------------------------------------------
    def _build_chart(
        self, tokens: list[Token]
    ) -> tuple[dict[tuple[int, int], list[Item]], list[str]]:
        length = len(tokens)
        chart: dict[tuple[int, int], list[Item]] = {}
        covered = [False] * length
        # Lexical spans (multiword phrases first-class).
        for span_len in range(1, min(self.lexicon.max_phrase_words, length) + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                words = [token.text for token in tokens[start:end]]
                items = [
                    Item(entry.category, stamp(entry.sem, start))
                    for entry in self.lexicon.lookup(words)
                ]
                if span_len == 1:
                    items.extend(
                        self._default_items(tokens[start], start, bool(items))
                    )
                # Forward type-raising of lexical NPs (T>): enables
                # object-relative clauses ("that it discards") through
                # composition with a transitive verb.
                for item in list(items):
                    if item.category == NP:
                        raised = forward(S, backward(S, NP))
                        items.append(
                            Item(raised, Lam("p", App(Var("p"), item.sem)))
                        )
                if items:
                    for position in range(start, end):
                        covered[position] = True
                    chart.setdefault((start, end), []).extend(items)
        unknown = [
            tokens[position].text
            for position in range(length)
            if not covered[position]
        ]
        # CKY combination.
        for span_len in range(2, length + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                cell = chart.setdefault((start, end), [])
                existing = {
                    (str(item.category), signature(item.sem)) for item in cell
                }
                for mid in range(start + 1, end):
                    for left in chart.get((start, mid), []):
                        for right in chart.get((mid, end), []):
                            for produced in combine(left, right):
                                # Normalize eagerly so semantically identical
                                # derivations (CCG's spurious ambiguity)
                                # collapse instead of saturating the cell.
                                reduced = Item(
                                    produced.category, reduce_term(produced.sem)
                                )
                                key = (str(reduced.category), signature(reduced.sem))
                                if key in existing:
                                    continue
                                if len(cell) >= self.max_cell_items:
                                    break
                                existing.add(key)
                                cell.append(reduced)
        return chart, unknown

    @staticmethod
    def _default_items(token: Token, index: int, has_entries: bool) -> list[Item]:
        """Kind-based entries: chunked NPs, numbers, state variables.

        Words with no lexicon entry that tag as verbs get generic action
        readings (transitive and passive/intransitive) — CCG's unknown-word
        fallback.  The @Action type check later kills these readings
        wherever a better-typed alternative exists; sentences that only
        parse through them are descriptive prose headed for the
        non-actionable bin.
        """
        if token.kind in (KIND_NOUN_PHRASE, KIND_STATEVAR):
            return [Item(NP, Const(normalize_term(token.text), span=(index, index + 1)))]
        if token.kind == KIND_NUMBER:
            return [Item(NP, Const(token.text, span=(index, index + 1)))]
        if not has_entries and token.kind == "word" and tag_word(token.text) == TAG_VERB:
            action = Const(normalize_term(token.text), span=(index, index + 1))
            subject = Var("y")
            obj = Var("x")
            lower = token.lower
            items = [
                # Passive/intransitive: "the datagram is discarded".
                Item(
                    backward(S, NP),
                    Lam("y", Call("Action", (action, subject), trigger=index)),
                ),
                # Transitive: "the gateway notifies the host".
                Item(
                    forward(backward(S, NP), NP),
                    Lam(
                        "x",
                        Lam("y", Call("Action", (action, subject, obj), trigger=index)),
                    ),
                ),
                # Imperative/infinitive: "To avoid the infinite regress ...".
                Item(
                    forward(S, NP),
                    Lam("x", Call("Action", (action, obj), trigger=index)),
                ),
            ]
            if lower.endswith("ed"):
                # Reduced relative / prenominal participle: "the received
                # data", "the network specified in ...".
                items.append(Item(backward(NP, NP), Lam("y", Var("y"))))
                items.append(Item(forward(NP, NP), Lam("x", Var("x"))))
            if lower.endswith("ing"):
                # Prenominal gerund ("the replying IP module") and
                # postnominal participle with object ("an integer
                # identifying the stratum level").
                items.append(Item(forward(NP, NP), Lam("x", Var("x"))))
                items.append(
                    Item(
                        forward(backward(NP, NP), NP),
                        Lam("x", Lam("y", Var("y"))),
                    )
                )
            return items
        return []


def _is_terminal_punct(token: Token) -> bool:
    return token.kind == KIND_PUNCT and token.text in ".!?:"


# -- combinators --------------------------------------------------------------

def combine(left: Item, right: Item) -> list[Item]:
    """All items derivable from an adjacent pair."""
    results: list[Item] = []
    results.extend(_apply_forward(left, right))
    results.extend(_apply_backward(left, right))
    results.extend(_compose_forward(left, right))
    results.extend(_compose_backward(left, right))
    results.extend(_coordinate(left, right))
    return results


def _apply_forward(left: Item, right: Item) -> list[Item]:
    """X/Y  Y  =>  X"""
    category = left.category
    if isinstance(category, Func) and category.slash == FORWARD:
        if category.arg == right.category:
            return [Item(category.result, App(left.sem, right.sem))]
    return []


def _apply_backward(left: Item, right: Item) -> list[Item]:
    """Y  X\\Y  =>  X"""
    category = right.category
    if isinstance(category, Func) and category.slash == BACKWARD:
        if category.arg == left.category:
            return [Item(category.result, App(right.sem, left.sem))]
    return []


def _compose_forward(left: Item, right: Item) -> list[Item]:
    """X/Y  Y/Z  =>  X/Z  (Lambek's B>)"""
    lcat, rcat = left.category, right.category
    if (
        isinstance(lcat, Func)
        and lcat.slash == FORWARD
        and isinstance(rcat, Func)
        and rcat.slash == FORWARD
        and lcat.arg == rcat.result
    ):
        sem = Lam("z", App(left.sem, App(right.sem, Var("z"))))
        return [Item(forward(lcat.result, rcat.arg), sem)]
    return []


def _compose_backward(left: Item, right: Item) -> list[Item]:
    """Y\\Z  X\\Y  =>  X\\Z  (B<)"""
    lcat, rcat = left.category, right.category
    if (
        isinstance(lcat, Func)
        and lcat.slash == BACKWARD
        and isinstance(rcat, Func)
        and rcat.slash == BACKWARD
        and rcat.arg == lcat.result
    ):
        sem = Lam("z", App(right.sem, App(left.sem, Var("z"))))
        return [Item(backward(rcat.result, lcat.arg), sem)]
    return []


def _coordinate(left: Item, right: Item) -> list[Item]:
    """CONJ X  =>  X\\X  (grouped)  and, for NP, the distributed raise.

    The grouped reading builds ``@And(a, b)``.  The distributed reading
    raises the coordination to ``(S/(S\\NP))\\NP`` so a following predicate
    distributes over both conjuncts; its @And carries the ``distributed``
    flag for the §4.2 distributivity check.
    """
    if left.category != CONJ:
        return []
    if isinstance(right.category, Func):
        return []  # only coordinate saturated constituents
    conj_pred = "Or" if isinstance(left.sem, Const) and left.sem.value == "or" else "And"
    grouped_sem = Lam(
        "a", Call(conj_pred, (Var("a"), right.sem))
    )
    results = [Item(backward(right.category, right.category), grouped_sem)]
    if right.category == NP:
        distributed_sem = Lam(
            "a",
            Lam(
                "p",
                Call(
                    conj_pred,
                    (
                        App(Var("p"), Var("a")),
                        App(Var("p"), right.sem),
                    ),
                    flags=frozenset({"distributed"}),
                ),
            ),
        )
        raised = backward(forward(S, backward(S, NP)), NP)
        results.append(Item(raised, distributed_sem))
    return results
