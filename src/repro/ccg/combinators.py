"""The CCG combinators as pure rules over (category, semantics) pairs.

Combinators implemented: forward/backward application, forward/backward
composition (harmless spurious derivations collapse under semantic dedup),
and coordination.  Coordination produces *both* readings of §4.1's
distributivity discussion: the grouped ``(A and B) is C`` and — for NP
conjuncts — the distributed ``(A is C) and (B is C)``, the latter flagged so
the distributivity check can prefer the grouped form.

Every rule here is a pure function from the two adjacent constituents'
categories and (unreduced) semantics to the produced constituents, with no
chart state: the reference CKY chart (:mod:`repro.ccg.chart`) folds them
over the full cell×cell cross product, while the indexed backend
(:mod:`repro.parsing.indexed`) consults the rule *preconditions* through
per-cell category indexes and only invokes a rule on pairs that can fire.
Both backends therefore derive the exact same productions from the same
rule definitions — backend parity is structural, not coincidental.

Rule order (``RULE_NAMES``) is part of the observable contract: cells
deduplicate semantically and keep the first-inserted reading's provenance,
so both backends must enumerate productions in the same rule order.
"""

from __future__ import annotations

from .categories import (
    BACKWARD,
    CONJ,
    FORWARD,
    NP,
    S,
    Category,
    Func,
    backward,
    forward,
)
from .semantics import App, Call, Const, Lam, Sem, Var

#: One produced constituent: its category and unreduced semantics.
Production = tuple[Category, Sem]

#: Rule indices, in application order.  The chart tries the rules in this
#: order for every adjacent pair; the indexed backend tags its candidate
#: productions with these indices and sorts, reproducing the same order.
RULE_FORWARD_APPLICATION = 0
RULE_BACKWARD_APPLICATION = 1
RULE_FORWARD_COMPOSITION = 2
RULE_BACKWARD_COMPOSITION = 3
RULE_COORDINATION = 4

RULE_NAMES = (
    "forward-application",
    "backward-application",
    "forward-composition",
    "backward-composition",
    "coordination",
)


def forward_application(
    lcat: Category, lsem: Sem, rcat: Category, rsem: Sem
) -> Production | None:
    """X/Y  Y  =>  X"""
    if isinstance(lcat, Func) and lcat.slash == FORWARD and lcat.arg == rcat:
        return (lcat.result, App(lsem, rsem))
    return None


def backward_application(
    lcat: Category, lsem: Sem, rcat: Category, rsem: Sem
) -> Production | None:
    """Y  X\\Y  =>  X"""
    if isinstance(rcat, Func) and rcat.slash == BACKWARD and rcat.arg == lcat:
        return (rcat.result, App(rsem, lsem))
    return None


def forward_composition(
    lcat: Category, lsem: Sem, rcat: Category, rsem: Sem
) -> Production | None:
    """X/Y  Y/Z  =>  X/Z  (Lambek's B>)"""
    if (
        isinstance(lcat, Func)
        and lcat.slash == FORWARD
        and isinstance(rcat, Func)
        and rcat.slash == FORWARD
        and lcat.arg == rcat.result
    ):
        sem = Lam("z", App(lsem, App(rsem, Var("z"))))
        return (forward(lcat.result, rcat.arg), sem)
    return None


def backward_composition(
    lcat: Category, lsem: Sem, rcat: Category, rsem: Sem
) -> Production | None:
    """Y\\Z  X\\Y  =>  X\\Z  (B<)"""
    if (
        isinstance(lcat, Func)
        and lcat.slash == BACKWARD
        and isinstance(rcat, Func)
        and rcat.slash == BACKWARD
        and rcat.arg == lcat.result
    ):
        sem = Lam("z", App(rsem, App(lsem, Var("z"))))
        return (backward(rcat.result, lcat.arg), sem)
    return None


def coordination(
    lcat: Category, lsem: Sem, rcat: Category, rsem: Sem
) -> tuple[Production, ...]:
    """CONJ X  =>  X\\X  (grouped)  and, for NP, the distributed raise.

    The grouped reading builds ``@And(a, b)``.  The distributed reading
    raises the coordination to ``(S/(S\\NP))\\NP`` so a following predicate
    distributes over both conjuncts; its @And carries the ``distributed``
    flag for the §4.2 distributivity check.
    """
    if lcat != CONJ:
        return ()
    if isinstance(rcat, Func):
        return ()  # only coordinate saturated constituents
    conj_pred = "Or" if isinstance(lsem, Const) and lsem.value == "or" else "And"
    grouped_sem = Lam("a", Call(conj_pred, (Var("a"), rsem)))
    productions: list[Production] = [(backward(rcat, rcat), grouped_sem)]
    if rcat == NP:
        distributed_sem = Lam(
            "a",
            Lam(
                "p",
                Call(
                    conj_pred,
                    (
                        App(Var("p"), Var("a")),
                        App(Var("p"), rsem),
                    ),
                    flags=frozenset({"distributed"}),
                ),
            ),
        )
        raised = backward(forward(S, backward(S, NP)), NP)
        productions.append((raised, distributed_sem))
    return tuple(productions)


def all_productions(
    lcat: Category, lsem: Sem, rcat: Category, rsem: Sem
) -> list[Production]:
    """Every production derivable from an adjacent pair, in rule order."""
    results: list[Production] = []
    for rule in (forward_application, backward_application,
                 forward_composition, backward_composition):
        produced = rule(lcat, lsem, rcat, rsem)
        if produced is not None:
            results.append(produced)
    results.extend(coordination(lcat, lsem, rcat, rsem))
    return results
